(* Unit and property tests for the primitives layer: RNG, backoff,
   statistics, padded atomics and the Real_atomic wrapper. *)

module Rng = Wfq_primitives.Rng
module Backoff = Wfq_primitives.Backoff
module Stats = Wfq_primitives.Stats
module Padded = Wfq_primitives.Padded
module A = Wfq_primitives.Real_atomic

(* ---------------------------- Rng ------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:123 and b = Rng.create ~seed:123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.next_int64 a = Rng.next_int64 b then incr same
  done;
  Alcotest.(check int) "independent streams" 0 !same

let test_rng_split_for () =
  let a = Rng.split_for ~seed:9 ~tid:0 and b = Rng.split_for ~seed:9 ~tid:1 in
  Alcotest.(check bool) "per-thread streams differ" true
    (Rng.next_int64 a <> Rng.next_int64 b)

let test_rng_below_range () =
  let r = Rng.create ~seed:5 in
  for _ = 1 to 1000 do
    let v = Rng.below r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_bool_balanced () =
  let r = Rng.create ~seed:77 in
  let trues = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Rng.bool r then incr trues
  done;
  let ratio = float_of_int !trues /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "fair coin (%.3f)" ratio)
    true
    (ratio > 0.47 && ratio < 0.53)

let test_rng_float_range () =
  let r = Rng.create ~seed:31 in
  for _ = 1 to 1000 do
    let f = Rng.float r in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_rng_below_invalid () =
  let r = Rng.create ~seed:1 in
  Alcotest.check_raises "bound 0 rejected"
    (Invalid_argument "Rng.below: bound must be positive") (fun () ->
      ignore (Rng.below r 0))

(* --------------------------- Backoff ---------------------------- *)

let test_backoff_growth () =
  let b = Backoff.create ~min_spins:4 ~max_spins:64 () in
  Alcotest.(check int) "starts at min" 4 (Backoff.current_spins b);
  Backoff.once b;
  Alcotest.(check int) "doubles" 8 (Backoff.current_spins b);
  Backoff.once b;
  Backoff.once b;
  Backoff.once b;
  Alcotest.(check int) "caps at max" 64 (Backoff.current_spins b);
  Backoff.once b;
  Alcotest.(check int) "stays at max" 64 (Backoff.current_spins b);
  Backoff.reset b;
  Alcotest.(check int) "reset to min" 4 (Backoff.current_spins b)

(* Pin the full cap/growth schedule (the satellite contract for the
   Domain.cpu_relax spin body): doubling from min, saturating exactly at
   max, including a non-power-of-two cap, plus the library defaults. *)
let test_backoff_schedule () =
  let schedule b n =
    List.init n (fun _ ->
        let s = Backoff.current_spins b in
        Backoff.once b;
        s)
  in
  let b = Backoff.create ~min_spins:4 ~max_spins:64 () in
  Alcotest.(check (list int))
    "doubling schedule, saturated at the cap"
    [ 4; 8; 16; 32; 64; 64; 64 ]
    (schedule b 7);
  (* A cap off the doubling ladder is still a true ceiling. *)
  let b = Backoff.create ~min_spins:3 ~max_spins:10 () in
  Alcotest.(check (list int)) "cap off the doubling ladder" [ 3; 6; 10; 10 ]
    (schedule b 4);
  Alcotest.(check int) "default min is 16" 16 Backoff.default_min;
  Alcotest.(check int) "default max is 4096" 4096 Backoff.default_max;
  let b = Backoff.create () in
  Alcotest.(check int) "defaults start at min" 16 (Backoff.current_spins b);
  Backoff.once b;
  Backoff.reset b;
  Alcotest.(check int) "reset returns to min" 16 (Backoff.current_spins b)

let test_backoff_validation () =
  Alcotest.check_raises "min must be positive"
    (Invalid_argument "Backoff.create: min_spins must be > 0") (fun () ->
      ignore (Backoff.create ~min_spins:0 ~max_spins:8 ()));
  Alcotest.check_raises "max >= min"
    (Invalid_argument "Backoff.create: max_spins must be >= min_spins")
    (fun () -> ignore (Backoff.create ~min_spins:16 ~max_spins:8 ()))

(* ---------------------------- Stats ----------------------------- *)

let feq = Alcotest.float 1e-9

let test_stats_mean_stddev () =
  Alcotest.check feq "mean" 3.0 (Stats.mean [ 1.0; 2.0; 3.0; 4.0; 5.0 ]);
  Alcotest.check feq "stddev (sample)"
    (sqrt 2.5)
    (Stats.stddev [ 1.0; 2.0; 3.0; 4.0; 5.0 ]);
  Alcotest.check feq "stddev of singleton" 0.0 (Stats.stddev [ 42.0 ]);
  Alcotest.check feq "min" 1.0 (Stats.minimum [ 3.0; 1.0; 2.0 ]);
  Alcotest.check feq "max" 3.0 (Stats.maximum [ 3.0; 1.0; 2.0 ])

let test_stats_percentiles () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.check feq "p50" 50.0 (Stats.percentile xs 50.0);
  Alcotest.check feq "p99" 99.0 (Stats.percentile xs 99.0);
  Alcotest.check feq "p100" 100.0 (Stats.percentile xs 100.0);
  Alcotest.check feq "median alias" (Stats.percentile xs 50.0)
    (Stats.median xs)

(* Nearest-rank pins at the boundary sizes the latency harness hits:
   a single sample answers every percentile, and at n=100 the rank
   arithmetic must not off-by-one around p=99.9 (ceil(99.9) = 100 ->
   the top sample, not past the end). *)
let test_stats_nearest_rank_pins () =
  Alcotest.check feq "n=1 p0" 7.0 (Stats.percentile [ 7.0 ] 0.0);
  Alcotest.check feq "n=1 p50" 7.0 (Stats.percentile [ 7.0 ] 50.0);
  Alcotest.check feq "n=1 p99.9" 7.0 (Stats.percentile [ 7.0 ] 99.9);
  Alcotest.check feq "n=1 p100" 7.0 (Stats.percentile [ 7.0 ] 100.0);
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.check feq "n=100 p1" 1.0 (Stats.percentile xs 1.0);
  Alcotest.check feq "n=100 p99.9" 100.0 (Stats.percentile xs 99.9);
  (* p=0 has rank 0; nearest-rank clamps to the smallest sample *)
  Alcotest.check feq "n=100 p0" 1.0 (Stats.percentile xs 0.0)

let test_stats_percentile_validation () =
  Alcotest.check_raises "p > 100 rejected"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Stats.percentile [ 1.0 ] 100.1));
  Alcotest.check_raises "p < 0 rejected"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Stats.percentile [ 1.0 ] (-1.0)));
  (* NaN defeats sorting: it must raise, never park silently in a rank *)
  Alcotest.check_raises "NaN sample rejected"
    (Invalid_argument "Stats.percentile_in_place: NaN sample at index 1")
    (fun () -> ignore (Stats.percentile_in_place [| 1.0; Float.nan |] 50.0))

let test_stats_in_place () =
  let arr = [| 5.0; 1.0; 4.0; 2.0; 3.0 |] in
  Alcotest.check feq "median via in-place sort" 3.0
    (Stats.percentile_in_place arr 50.0);
  (* the in-place contract: the array is now sorted ascending *)
  Alcotest.(check (array (float 0.0)))
    "array sorted in place"
    [| 1.0; 2.0; 3.0; 4.0; 5.0 |]
    arr;
  let arr = Array.init 1000 (fun i -> float_of_int (999 - i)) in
  (match Stats.percentiles_in_place arr [ 50.0; 99.0; 99.9; 100.0 ] with
  | [ p50; p99; p999; p100 ] ->
      Alcotest.check feq "batch p50" 499.0 p50;
      Alcotest.check feq "batch p99" 989.0 p99;
      Alcotest.check feq "batch p99.9" 998.0 p999;
      Alcotest.check feq "batch p100" 999.0 p100
  | _ -> Alcotest.fail "percentiles_in_place arity");
  Alcotest.check_raises "empty array rejected"
    (Invalid_argument "Stats.percentile_in_place: empty") (fun () ->
      ignore (Stats.percentile_in_place [||] 50.0))

let test_stats_empty () =
  Alcotest.check_raises "mean of empty"
    (Invalid_argument "Stats.mean: empty list") (fun () ->
      ignore (Stats.mean []))

let stats_mean_bounds =
  QCheck2.Test.make ~name:"mean between min and max" ~count:200
    QCheck2.Gen.(list_size (int_range 1 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let m = Stats.mean xs in
      m >= Stats.minimum xs -. 1e-9 && m <= Stats.maximum xs +. 1e-9)

(* --------------------------- Padded ----------------------------- *)

let test_padded_ops () =
  let p = Padded.make 10 in
  Alcotest.(check int) "get" 10 (Padded.get p);
  Padded.set p 20;
  Alcotest.(check int) "set" 20 (Padded.get p);
  Alcotest.(check bool) "cas ok" true (Padded.compare_and_set p 20 30);
  Alcotest.(check bool) "cas stale fails" false
    (Padded.compare_and_set p 20 40);
  Alcotest.(check int) "faa returns old" 30 (Padded.fetch_and_add p 5);
  Alcotest.(check int) "faa applied" 35 (Padded.get p)

(* ------------------------- Real_atomic -------------------------- *)

let test_real_atomic_physical_cas () =
  (* Reference CAS is physical: a structurally equal but distinct record
     must NOT match — the property the KP descriptors depend on. *)
  let mk () = ref 1 in
  let a = mk () and b = mk () in
  let cell = A.make a in
  Alcotest.(check bool) "distinct but equal value fails" false
    (A.compare_and_set cell b a);
  Alcotest.(check bool) "same box succeeds" true (A.compare_and_set cell a b);
  Alcotest.(check bool) "now holds b" true (A.get cell == b)

let test_real_atomic_exchange () =
  let cell = A.make "x" in
  Alcotest.(check string) "old returned" "x" (A.exchange cell "y");
  Alcotest.(check string) "new stored" "y" (A.get cell)

let test_real_atomic_parallel_faa () =
  (* fetch_and_add from several domains: total must be exact. *)
  let cell = A.make 0 in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 10_000 do
              ignore (A.fetch_and_add cell 1)
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "no lost increments" 40_000 (A.get cell)

let () =
  Alcotest.run "primitives"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic per seed" `Quick
            test_rng_deterministic;
          Alcotest.test_case "seeds independent" `Quick test_rng_seeds_differ;
          Alcotest.test_case "split_for per thread" `Quick test_rng_split_for;
          Alcotest.test_case "below in range" `Quick test_rng_below_range;
          Alcotest.test_case "bool is fair" `Quick test_rng_bool_balanced;
          Alcotest.test_case "float in [0,1)" `Quick test_rng_float_range;
          Alcotest.test_case "below rejects 0" `Quick test_rng_below_invalid;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "exponential growth and reset" `Quick
            test_backoff_growth;
          Alcotest.test_case "full cap/growth schedule" `Quick
            test_backoff_schedule;
          Alcotest.test_case "argument validation" `Quick
            test_backoff_validation;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/stddev/min/max" `Quick
            test_stats_mean_stddev;
          Alcotest.test_case "percentiles" `Quick test_stats_percentiles;
          Alcotest.test_case "nearest-rank pins (n=1, n=100, p=99.9)" `Quick
            test_stats_nearest_rank_pins;
          Alcotest.test_case "range and NaN validation" `Quick
            test_stats_percentile_validation;
          Alcotest.test_case "in-place percentiles" `Quick
            test_stats_in_place;
          Alcotest.test_case "empty input rejected" `Quick test_stats_empty;
          QCheck_alcotest.to_alcotest stats_mean_bounds;
        ] );
      ( "padded",
        [ Alcotest.test_case "all operations" `Quick test_padded_ops ] );
      ( "real_atomic",
        [
          Alcotest.test_case "CAS is physical equality" `Quick
            test_real_atomic_physical_cas;
          Alcotest.test_case "exchange" `Quick test_real_atomic_exchange;
          Alcotest.test_case "parallel fetch_and_add" `Quick
            test_real_atomic_parallel_faa;
        ] );
    ]
