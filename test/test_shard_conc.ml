(* Concurrency tests for the sharded front-end on real OCaml domains.

   What a relaxed-FIFO sharded queue must still guarantee under real
   concurrency:

   - conservation: every enqueued value is dequeued exactly once (or
     remains at the end) — no loss, no duplication;
   - per-(producer, shard) order: the values one producer placed in one
     shard are consumed in that producer's program order (each shard is
     a strict FIFO and a producer's inserts into it are ordered);
   - quiescence: once the domains join, the remaining elements are
     exactly recoverable — the sweep never reports empty early;
   - strict mode (one shard) passes the unsharded pairs test verbatim,
     including its "empty is impossible" property. *)

module P = Wfq_shard.Shard
module Sh = Wfq_shard.Shard.Make (Wfq_primitives.Real_atomic)

let policies =
  [ (P.Round_robin, "rr"); (P.Tid_affine, "affine");
    (P.Length_aware, "length") ]

(* value = producer * 1_000_000 + seq, as in test_queues_conc. *)
let encode ~producer ~seq = (producer * 1_000_000) + seq
let producer_of v = v / 1_000_000
let seq_of v = v mod 1_000_000

let test_producers_consumers (policy, pname) ~shards ~producers ~consumers
    ~per_producer () =
  let num_threads = producers + consumers in
  let t = Sh.create ~policy ~shards ~num_threads () in
  let total = producers * per_producer in
  let consumed = Atomic.make 0 in
  (* Each consumer logs (value, serving shard); the shard probe is
     single-writer per tid, so reading it right after the dequeue
     returns is race-free. *)
  let logs = Array.make consumers [] in
  let producer p () =
    for seq = 1 to per_producer do
      Sh.enqueue t ~tid:p (encode ~producer:p ~seq)
    done
  in
  let consumer c () =
    let tid = producers + c in
    let got = ref [] in
    while Atomic.get consumed < total do
      match Sh.dequeue t ~tid with
      | Some v ->
          got := (v, Sh.last_dequeue_shard t ~tid) :: !got;
          Atomic.incr consumed
      | None ->
          (* Legitimate: a sweep may race ahead of the producers. *)
          Domain.cpu_relax ()
    done;
    logs.(c) <- List.rev !got
  in
  let domains =
    List.init producers (fun p -> Domain.spawn (producer p))
    @ List.init consumers (fun c -> Domain.spawn (consumer c))
  in
  List.iter Domain.join domains;
  let name = Printf.sprintf "%s x%d" pname shards in
  (* Conservation. *)
  let seen = Hashtbl.create total in
  Array.iter
    (List.iter (fun (v, _) ->
         if Hashtbl.mem seen v then
           Alcotest.fail (Printf.sprintf "%s: value %d seen twice" name v);
         Hashtbl.add seen v ()))
    logs;
  Alcotest.(check int) "every value consumed exactly once" total
    (Hashtbl.length seen);
  Alcotest.(check int) "queue empty" 0 (Sh.length t);
  (* Per-(producer, shard) order within each consumer's log. *)
  Array.iter
    (fun log ->
      let last_seq = Hashtbl.create 16 in
      List.iter
        (fun (v, s) ->
          Alcotest.(check bool) "shard probe in range" true
            (s >= 0 && s < shards);
          let key = (producer_of v, s) in
          let prev = Option.value (Hashtbl.find_opt last_seq key) ~default:0 in
          if seq_of v <= prev then
            Alcotest.fail
              (Printf.sprintf
                 "%s: per-(producer,shard) order violated (p%d/s%d: %d \
                  after %d)"
                 name (producer_of v) s (seq_of v) prev);
          Hashtbl.replace last_seq key (seq_of v))
        log)
    logs;
  (match Sh.check_quiescent_invariants t with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* Stats agree with the run at quiescence. *)
  let st = Sh.stats t in
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 st in
  Alcotest.(check int) "stats: enqueues" total (sum (fun s -> s.P.enqueues));
  Alcotest.(check int) "stats: dequeues" total (sum (fun s -> s.P.dequeues))

(* Pairs with retry (the relaxed workload shape): each domain enqueues
   then dequeues-until-hit. Every enqueue must eventually be matched;
   the queue must balance to empty. *)
let test_pairs_relaxed (policy, pname) ~shards ~threads ~iters () =
  let t = Sh.create ~policy ~shards ~num_threads:threads () in
  let empties = Atomic.make 0 in
  let domains =
    List.init threads (fun tid ->
        Domain.spawn (fun () ->
            for i = 1 to iters do
              Sh.enqueue t ~tid (encode ~producer:tid ~seq:i);
              let rec take () =
                match Sh.dequeue t ~tid with
                | Some _ -> ()
                | None ->
                    Atomic.incr empties;
                    Domain.cpu_relax ();
                    take ()
              in
              take ()
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int)
    (Printf.sprintf "%s x%d: balanced" pname shards)
    0 (Sh.length t);
  Alcotest.(check bool) "empty at quiescence" true (Sh.is_empty t)

(* Strict mode must satisfy the STRICT pairs property: with one shard
   there is no sweep relaxation, so a dequeue right after an enqueue
   can never observe empty. *)
let test_strict_pairs_never_empty () =
  let threads = 4 and iters = 3_000 in
  let t = Sh.create_strict ~num_threads:threads () in
  let empties = Atomic.make 0 in
  let domains =
    List.init threads (fun tid ->
        Domain.spawn (fun () ->
            for i = 1 to iters do
              Sh.enqueue t ~tid (encode ~producer:tid ~seq:i);
              match Sh.dequeue t ~tid with
              | Some _ -> ()
              | None -> Atomic.incr empties
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "strict mode: empty is impossible in pairs" 0
    (Atomic.get empties);
  Alcotest.(check int) "balanced" 0 (Sh.length t)

(* Concurrent batches: producers push batches, consumers pull batches;
   conservation plus intra-batch order per (producer, shard) — batch
   elements from one producer that landed in one shard must come back
   in batch order inside each consumer's stream. *)
let test_batches_concurrent (policy, pname) ~shards () =
  let producers = 2 and consumers = 2 in
  let batches = 300 and batch = 7 in
  let num_threads = producers + consumers in
  let t = Sh.create ~policy ~shards ~num_threads () in
  let total = producers * batches * batch in
  let consumed = Atomic.make 0 in
  let logs = Array.make consumers [] in
  let producer p () =
    for b = 0 to batches - 1 do
      Sh.enqueue_batch t ~tid:p
        (List.init batch (fun i ->
             encode ~producer:p ~seq:((b * batch) + i + 1)))
    done
  in
  let consumer c () =
    let tid = producers + c in
    let got = ref [] in
    while Atomic.get consumed < total do
      match Sh.dequeue_batch t ~tid ~n:5 with
      | [] -> Domain.cpu_relax ()
      | vs ->
          got := List.rev_append vs !got;
          ignore (Atomic.fetch_and_add consumed (List.length vs))
    done;
    logs.(c) <- List.rev !got
  in
  let domains =
    List.init producers (fun p -> Domain.spawn (producer p))
    @ List.init consumers (fun c -> Domain.spawn (consumer c))
  in
  List.iter Domain.join domains;
  let name = Printf.sprintf "%s x%d batches" pname shards in
  let seen = Hashtbl.create total in
  Array.iter
    (List.iter (fun v ->
         if Hashtbl.mem seen v then
           Alcotest.fail (Printf.sprintf "%s: value %d seen twice" name v);
         Hashtbl.add seen v ()))
    logs;
  Alcotest.(check int) "conservation" total (Hashtbl.length seen);
  Alcotest.(check int) "drained" 0 (Sh.length t)

(* The acceptance property, on real domains: whatever interleaving the
   concurrent phase produced, at quiescence a dequeuing sweep finds
   every remaining element before it ever reports None. Producers
   deliberately outpace consumers so a remainder exists. *)
let test_quiescent_remainder_recoverable (policy, pname) ~shards () =
  let producers = 3 and consumers = 1 in
  let per = 4_000 and take = 2_000 in
  let num_threads = producers + consumers in
  let t = Sh.create ~policy ~shards ~num_threads () in
  let taken = Atomic.make 0 in
  let domains =
    List.init producers (fun p ->
        Domain.spawn (fun () ->
            for seq = 1 to per do
              Sh.enqueue t ~tid:p (encode ~producer:p ~seq)
            done))
    @ [
        Domain.spawn (fun () ->
            let tid = producers in
            while Atomic.get taken < take do
              match Sh.dequeue t ~tid with
              | Some _ -> Atomic.incr taken
              | None -> Domain.cpu_relax ()
            done);
      ]
  in
  List.iter Domain.join domains;
  let remaining = (producers * per) - Atomic.get taken in
  Alcotest.(check int)
    (Printf.sprintf "%s x%d: remainder visible in length" pname shards)
    remaining (Sh.length t);
  (* Sequential drain: exactly [remaining] hits, then None, and never
     None before that. *)
  let rec drain got =
    match Sh.dequeue t ~tid:0 with
    | Some _ -> drain (got + 1)
    | None -> got
  in
  let got = drain 0 in
  Alcotest.(check int) "sweep recovered every element" remaining got;
  Alcotest.(check bool) "empty after recovery" true (Sh.is_empty t)

let per_policy_cases =
  List.concat_map
    (fun ((_, pname) as p) ->
      [
        Alcotest.test_case
          (Printf.sprintf "%s x4 2p/2c" pname)
          `Quick
          (test_producers_consumers p ~shards:4 ~producers:2 ~consumers:2
             ~per_producer:3_000);
        Alcotest.test_case
          (Printf.sprintf "%s x2 4p/1c" pname)
          `Quick
          (test_producers_consumers p ~shards:2 ~producers:4 ~consumers:1
             ~per_producer:2_000);
        Alcotest.test_case
          (Printf.sprintf "%s x4 pairs-with-retry" pname)
          `Quick
          (test_pairs_relaxed p ~shards:4 ~threads:4 ~iters:3_000);
        Alcotest.test_case
          (Printf.sprintf "%s x4 concurrent batches" pname)
          `Quick
          (test_batches_concurrent p ~shards:4);
        Alcotest.test_case
          (Printf.sprintf "%s x3 quiescent remainder" pname)
          `Quick
          (test_quiescent_remainder_recoverable p ~shards:3);
      ])
    policies

let () =
  Alcotest.run "shard-concurrent"
    [
      ("domains", per_policy_cases);
      ( "strict",
        [
          Alcotest.test_case "strict pairs never observes empty" `Quick
            test_strict_pairs_never_empty;
        ] );
    ]
