(* Tests for the §3.3 extension features: chunked cyclic helping and the
   tuning enhancements (gc_friendly descriptor reset, pre-CAS
   validation). Each variant must preserve full queue semantics — checked
   sequentially, under real domains, and under simulator model checking —
   and the gc_friendly flag must actually release node references. *)

module A = Wfq_primitives.Real_atomic
module Kp = Wfq_core.Kp_queue.Make (A)
module SA = Wfq_sim.Sim_atomic
module KpSim = Wfq_core.Kp_queue.Make (SA)
module S = Wfq_sim.Scheduler
module E = Wfq_sim.Explore
module H = Wfq_lincheck.History
module C = Wfq_lincheck.Checker
open Wfq_core.Kp_queue

let tuned = { gc_friendly = true; validate_before_cas = true }

let variants =
  [
    ("chunk-1", Help_chunk 1, Phase_counter, default_tuning);
    ("chunk-2", Help_chunk 2, Phase_counter, default_tuning);
    ("chunk-3", Help_chunk 3, Phase_scan, default_tuning);
    ("gc-friendly", Help_all, Phase_scan,
     { default_tuning with gc_friendly = true });
    ("validate-cas", Help_all, Phase_scan,
     { default_tuning with validate_before_cas = true });
    ("fully-tuned", Help_one_cyclic, Phase_counter, tuned);
  ]

let test_chunk_validation () =
  Alcotest.check_raises "chunk 0 rejected"
    (Invalid_argument "Kp_queue.create: chunk size must be positive")
    (fun () ->
      ignore
        (Kp.create_with ~help:(Help_chunk 0) ~phase:Phase_scan
           ~num_threads:2 ()));
  (* Chunk larger than the thread count is fine (clamped). *)
  let q =
    Kp.create_with ~help:(Help_chunk 64) ~phase:Phase_scan ~num_threads:2 ()
  in
  Kp.enqueue q ~tid:0 1;
  Alcotest.(check (option int)) "usable" (Some 1) (Kp.dequeue q ~tid:1)

let test_variant_sequential (name, help, phase, tuning) () =
  let q = Kp.create_with ~tuning ~help ~phase ~num_threads:3 () in
  let model = Queue.create () in
  let rng = Wfq_primitives.Rng.create ~seed:11 in
  for i = 1 to 2_000 do
    let tid = Wfq_primitives.Rng.below rng 3 in
    if Wfq_primitives.Rng.bool rng then begin
      Kp.enqueue q ~tid i;
      Queue.push i model
    end
    else if Kp.dequeue q ~tid <> Queue.take_opt model then
      Alcotest.fail (name ^ ": diverged from model")
  done;
  Alcotest.(check (list int))
    (name ^ " final contents")
    (List.of_seq (Queue.to_seq model))
    (Kp.to_list q)

let test_variant_domains (name, help, phase, tuning) () =
  let threads = 4 and iters = 3_000 in
  let q = Kp.create_with ~tuning ~help ~phase ~num_threads:threads () in
  let empties = Atomic.make 0 in
  let ds =
    List.init threads (fun tid ->
        Domain.spawn (fun () ->
            for i = 1 to iters do
              Kp.enqueue q ~tid ((tid * iters) + i);
              match Kp.dequeue q ~tid with
              | Some _ -> ()
              | None -> Atomic.incr empties
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) (name ^ ": no empties in pairs") 0
    (Atomic.get empties);
  Alcotest.(check int) (name ^ ": drained") 0 (Kp.length q);
  match Kp.check_quiescent_invariants q with
  | Ok () -> ()
  | Error msg -> Alcotest.fail (name ^ ": " ^ msg)

(* Model checking: each variant, the producer/consumer scenario, every
   schedule with <= 2 preemptions must be linearizable. *)
let test_variant_systematic (name, help, phase, tuning) () =
  let make () =
    let q = KpSim.create_with ~tuning ~help ~phase ~num_threads:2 () in
    let hist = H.create () in
    let fiber tid script () =
      List.iter
        (function
          | `Enq v ->
              H.call hist ~thread:tid (H.Enq v);
              KpSim.enqueue q ~tid v;
              H.return hist ~thread:tid H.Done
          | `Deq -> (
              H.call hist ~thread:tid H.Deq;
              match KpSim.dequeue q ~tid with
              | Some v -> H.return hist ~thread:tid (H.Got v)
              | None -> H.return hist ~thread:tid H.Empty))
        script
    in
    let scripts = [ [ `Enq 1; `Deq ]; [ `Enq 2; `Deq ] ] in
    let check (_ : S.result) =
      if C.is_linearizable (H.completed hist) then Ok ()
      else Error "not linearizable"
    in
    (Array.of_list (List.mapi fiber scripts), check)
  in
  let report = E.preemption_bounded ~budget:2 ~max_schedules:60_000 ~make () in
  (match report.E.failure with
  | Some (prefix, msg) ->
      Alcotest.fail
        (Printf.sprintf "%s: schedule [%s] failed: %s" name
           (String.concat ";" (List.map string_of_int prefix))
           msg)
  | None -> ());
  Alcotest.(check bool) (name ^ ": exhausted") true report.E.exhausted

(* Wait-freedom certification: every §3.3 knob, DPOR-exhaustive over the
   enq|deq scenario, with the per-fiber step bound asserted on every
   explored schedule (Wfq_sim.Check's certifier — the currency of the
   paper's step-complexity theorem). A variant that could livelock or
   starve under some schedule would blow the bound or hit the step
   limit. *)
module Ck = Wfq_sim.Check

let certified_step_bound = 64

let variant_sim_ops (help, phase, tuning) : _ Ck.ops =
  {
    Ck.create =
      (fun ~num_threads ->
        KpSim.create_with ~tuning ~help ~phase ~num_threads ());
    enqueue = (fun q ~tid v -> KpSim.enqueue q ~tid v);
    dequeue = (fun q ~tid -> KpSim.dequeue q ~tid);
    contents = KpSim.to_list;
  }

let test_variant_certified (name, help, phase, tuning) () =
  (* Help_all × Phase_scan reads every slot twice per helping round, so
     its enq|deq trace space runs to ~1M Mazurkiewicz traces (measured:
     gc-friendly 995,830, validate-cas 406,134 — both clean but tens of
     seconds). Those two certify under <=3 preemptions instead; the
     cyclic/chunked variants are cheap enough for full DPOR. *)
  let mode =
    match help with
    | Help_all -> Ck.Preemption_bounded 3
    | Help_one_cyclic | Help_chunk _ -> Ck.Dpor
  in
  match
    Ck.certify ~mode ~max_schedules:100_000 ~bound:certified_step_bound
      ~queue:(variant_sim_ops (help, phase, tuning))
      ~scripts:[ [ `Enq 1 ]; [ `Deq ] ]
      ()
  with
  | Error m -> Alcotest.failf "%s: %s" name m
  | Ok c ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: certified bound %d covers the observed max %d"
           name certified_step_bound c.Ck.observed_bound)
        true
        (c.Ck.observed_bound <= certified_step_bound)

(* gc_friendly semantics: the descriptor drops its node reference as soon
   as the operation returns. *)
let test_gc_friendly_clears_descriptor () =
  let plain = Kp.create ~num_threads:2 () in
  Kp.enqueue plain ~tid:0 1;
  ignore (Kp.dequeue plain ~tid:1);
  Alcotest.(check bool) "base keeps node reference (the §3.3 leak)" true
    (Kp.holds_node_reference plain ~tid:0
    || Kp.holds_node_reference plain ~tid:1);
  let friendly =
    Kp.create_with
      ~tuning:{ default_tuning with gc_friendly = true }
      ~help:Help_all ~phase:Phase_scan ~num_threads:2 ()
  in
  Kp.enqueue friendly ~tid:0 1;
  ignore (Kp.dequeue friendly ~tid:1);
  Alcotest.(check bool) "gc_friendly clears tid 0" false
    (Kp.holds_node_reference friendly ~tid:0);
  Alcotest.(check bool) "gc_friendly clears tid 1" false
    (Kp.holds_node_reference friendly ~tid:1)

(* gc_friendly effect on the heap: after dequeuing large payloads, the
   friendly queue retains measurably less live memory. *)
let test_gc_friendly_releases_memory () =
  let live () =
    Gc.full_major ();
    (Gc.stat ()).Gc.live_words
  in
  (* The value dequeued LAST is always retained by the queue itself (the
     node holding it became the sentinel — inherent to MS-style queues).
     The §3.3 leak is the value dequeued BEFORE it: its node is the
     sentinel recorded in the dequeuer's descriptor, so without the
     enhancement the descriptor pins it forever. *)
  let payload_words = 64 * 1024 in
  let retained tuning =
    let q =
      Kp.create_with ~tuning ~help:Help_all ~phase:Phase_scan
        ~num_threads:1 ()
    in
    let before = live () in
    Kp.enqueue q ~tid:0 (Array.make payload_words 0);
    Kp.enqueue q ~tid:0 (Array.make payload_words 1);
    ignore (Kp.dequeue q ~tid:0);
    ignore (Kp.dequeue q ~tid:0);
    let after = live () in
    ignore (Sys.opaque_identity q);
    after - before
  in
  let base = retained default_tuning in
  let friendly = retained { default_tuning with gc_friendly = true } in
  Alcotest.(check bool)
    (Printf.sprintf "base retains both payloads (%d words)" base)
    true
    (base >= 2 * payload_words);
  Alcotest.(check bool)
    (Printf.sprintf "gc_friendly retains only the sentinel's (%d words)"
       friendly)
    true
    (friendly < (3 * payload_words / 2))

let () =
  Alcotest.run "kp-variants"
    [
      ( "construction",
        [ Alcotest.test_case "chunk validation" `Quick test_chunk_validation ]
      );
      ( "sequential",
        List.map
          (fun ((name, _, _, _) as v) ->
            Alcotest.test_case (name ^ " ≡ model") `Quick
              (test_variant_sequential v))
          variants );
      ( "domains",
        List.map
          (fun ((name, _, _, _) as v) ->
            Alcotest.test_case (name ^ " pairs stress") `Quick
              (test_variant_domains v))
          variants );
      ( "systematic",
        List.map
          (fun ((name, _, _, _) as v) ->
            Alcotest.test_case (name ^ " <=2 preemptions") `Quick
              (test_variant_systematic v))
          variants );
      ( "certified",
        List.map
          (fun ((name, help, phase, tuning) as _v) ->
            Alcotest.test_case (name ^ " wait-freedom certified") `Quick
              (test_variant_certified (name, help, phase, tuning)))
          variants );
      ( "gc-friendly",
        [
          Alcotest.test_case "descriptor cleared" `Quick
            test_gc_friendly_clears_descriptor;
          Alcotest.test_case "memory released" `Quick
            test_gc_friendly_releases_memory;
        ] );
    ]
