(* The fast-path/slow-path queue (Kp_queue_fps), checked three ways:

   - under the deterministic simulator: every explored interleaving of
     the contended scenarios is linearizable and conserves elements,
     with [max_failures = 1] so the fast->slow fallback genuinely fires
     inside the exploration (asserted via the slow-path probe);
   - under the counting ATOMIC wrapper: an uncontended enqueue+dequeue
     pair performs strictly fewer atomic RMWs than the base KP queue —
     the whole point of the fast path;
   - on real domains: conservation and per-producer FIFO order at 8
     domains, and a probe check that contention with [max_failures = 1]
     actually drives operations onto the slow path. *)

module S = Wfq_sim.Scheduler
module SA = Wfq_sim.Sim_atomic
module E = Wfq_sim.Explore
module H = Wfq_lincheck.History
module C = Wfq_lincheck.Checker
module Fp_sim = Wfq_core.Kp_queue_fps.Make (SA)

let fps_make ~max_failures ~num_threads =
  Wfq_core.Kp_queue_fps.(
    Fp_sim.create_with ~max_failures ~help:Help_one_cyclic
      ~phase:Phase_counter ~num_threads ())

(* ---------------------------------------------------------------- *)
(* Simulator: systematic linearizability, fallback included          *)
(* ---------------------------------------------------------------- *)

type script = [ `Enq of int | `Deq ] list

(* Mirrors test_sim_queues's scenario builder; additionally reports the
   queue's slow-path entry count to the [slow_seen] accumulator so the
   exploration can assert the fallback was exercised. *)
let scenario ~max_failures ~slow_seen (scripts : script list) () =
  let num_threads = List.length scripts in
  let q = fps_make ~max_failures ~num_threads in
  let hist = H.create () in
  let fiber tid script () =
    List.iter
      (function
        | `Enq v ->
            H.call hist ~thread:tid (H.Enq v);
            Fp_sim.enqueue q ~tid v;
            H.return hist ~thread:tid H.Done
        | `Deq -> (
            H.call hist ~thread:tid H.Deq;
            match Fp_sim.dequeue q ~tid with
            | Some v -> H.return hist ~thread:tid (H.Got v)
            | None -> H.return hist ~thread:tid H.Empty))
      script
  in
  let check (_ : S.result) =
    slow_seen := !slow_seen + Fp_sim.slow_path_entries q;
    let completed = H.completed hist in
    let enqueued =
      List.filter_map
        (fun (c : H.completed) ->
          match c.op with H.Enq v -> Some v | H.Deq -> None)
        completed
    in
    let dequeued =
      List.filter_map
        (fun (c : H.completed) ->
          match c.response with H.Got v -> Some v | H.Done | H.Empty | H.Rejected -> None)
        completed
    in
    let left = S.ignore_yields (fun () -> Fp_sim.to_list q) in
    let sort = List.sort compare in
    if sort enqueued <> sort (dequeued @ left) then
      Error
        (Printf.sprintf "conservation violated: %d enq, %d deq, %d left"
           (List.length enqueued) (List.length dequeued) (List.length left))
    else if not (C.is_linearizable completed) then
      Error (Format.asprintf "not linearizable:@.%a" C.pp_history completed)
    else
      match
        S.ignore_yields (fun () -> Fp_sim.check_quiescent_invariants q)
      with
      | Error e -> Error ("quiescent invariants: " ^ e)
      | Ok () -> Ok ()
  in
  (Array.of_list (List.mapi fiber scripts), check)

let scenarios : (string * script list) list =
  [
    ("2x enq race", [ [ `Enq 1 ]; [ `Enq 2 ] ]);
    ("enq vs deq on empty", [ [ `Enq 1 ]; [ `Deq ] ]);
    ("2x deq on singleton", [ [ `Deq ]; [ `Deq; `Enq 9 ] ]);
    ("pairs x2", [ [ `Enq 1; `Deq ]; [ `Enq 2; `Deq ] ]);
    ("producer/consumer", [ [ `Enq 1; `Enq 2 ]; [ `Deq; `Deq ] ]);
    ("three-way", [ [ `Enq 1 ]; [ `Enq 2 ]; [ `Deq; `Deq; `Deq ] ]);
  ]

(* [max_failures = 1]: a single failed fast round falls back, so the
   preemption-bounded search reaches fast-path, slow-path and
   fast-helps-slow interleavings in the same exploration. *)
let explore_case ~max_failures ~track_slow (scen_name, scripts) budget =
  Alcotest.test_case
    (Printf.sprintf "mf=%d: %s (<=%d preemptions)" max_failures scen_name
       budget)
    `Quick
    (fun () ->
      let slow_seen = ref 0 in
      let report =
        E.preemption_bounded ~budget ~max_schedules:60_000
          ~make:(scenario ~max_failures ~slow_seen scripts)
          ()
      in
      (match report.E.failure with
      | Some (prefix, msg) ->
          Alcotest.fail
            (Printf.sprintf "schedule %s failed: %s"
               (String.concat "," (List.map string_of_int prefix))
               msg)
      | None -> ());
      Alcotest.(check bool) "search exhausted" true report.E.exhausted;
      if track_slow then
        Alcotest.(check bool)
          (Printf.sprintf
             "some explored schedule forced the slow path (saw %d entries)"
             !slow_seen)
          true (!slow_seen > 0))

let systematic_tests =
  (* mf=1 with fallback tracking on the contended scenarios (the
     single-op "enq vs deq on empty" never fails a CAS: enqueue and
     dequeue touch disjoint words on an empty queue). *)
  List.map
    (fun ((name, scripts) as scen) ->
      let contended = name <> "enq vs deq on empty" in
      explore_case ~max_failures:1 ~track_slow:contended scen
        (if List.length scripts >= 3 then 1 else 2))
    scenarios
  (* mf=0 degenerates to the pure KP slow path; keep one scenario as a
     sanity anchor. mf=64 keeps everything on the fast path. *)
  @ [
      explore_case ~max_failures:0 ~track_slow:true
        ("pairs x2", [ [ `Enq 1; `Deq ]; [ `Enq 2; `Deq ] ])
        2;
      explore_case ~max_failures:64 ~track_slow:false
        ("pairs x2", [ [ `Enq 1; `Deq ]; [ `Enq 2; `Deq ] ])
        2;
    ]

let fuzz_case ~max_failures (scen_name, scripts) count =
  Alcotest.test_case
    (Printf.sprintf "mf=%d: %s (fuzz %d)" max_failures scen_name count)
    `Quick
    (fun () ->
      let slow_seen = ref 0 in
      let report =
        E.fuzz ~count ~make:(scenario ~max_failures ~slow_seen scripts) ()
      in
      match report.E.failure with
      | Some (_, msg) -> Alcotest.fail msg
      | None -> ())

let big_scenario : string * script list =
  ( "4 threads mixed",
    [
      [ `Enq 1; `Deq; `Enq 2 ];
      [ `Deq; `Enq 3; `Deq ];
      [ `Enq 4; `Enq 5; `Deq ];
      [ `Deq; `Deq; `Enq 6 ];
    ] )

let fuzz_tests =
  [
    fuzz_case ~max_failures:1 big_scenario 400;
    fuzz_case ~max_failures:8 big_scenario 400;
  ]

(* Regression: help_slot must pass the DESCRIPTOR's phase down to
   help_enq/help_deq (paper Fig. 2), not the caller's bound. With the
   caller's bound — in particular maybe_help's max_int — a stale helper
   survives into the tid's next operation (phases per tid strictly
   increase, so the descriptor-phase bound filters it): it can rewrite a
   pending enqueue descriptor through the dequeue helper or re-append a
   consumed node, wedging tail so that every operation livelocks in
   help_finish_enq. Seed 286 of the 4-thread scenario above hit exactly
   that as a 1M-step livelock with two fibers spinning. *)
let test_stale_helper_phase_bound_regression () =
  let _, scripts = big_scenario in
  let slow_seen = ref 0 in
  let report =
    E.fuzz ~seed0:286 ~count:1
      ~make:(scenario ~max_failures:1 ~slow_seen scripts)
      ()
  in
  match report.E.failure with
  | Some (_, msg) -> Alcotest.fail msg
  | None -> ()

(* ---------------------------------------------------------------- *)
(* Cost model: fewer RMWs than base KP when uncontended               *)
(* ---------------------------------------------------------------- *)

module Cnt = Wfq_primitives.Counted_atomic
module CA = Wfq_primitives.Counted_atomic.Make (Wfq_primitives.Real_atomic)
module Kp_cnt = Wfq_core.Kp_queue.Make (CA)
module Fp_cnt = Wfq_core.Kp_queue_fps.Make (CA)

let rmws (s : Cnt.counters) =
  s.Cnt.cas_success + s.Cnt.cas_failure + s.Cnt.exchanges + s.Cnt.fetch_adds

let profile f =
  CA.reset ();
  f ();
  CA.snapshot ()

let test_fps_pair_cheaper_than_kp () =
  let fq =
    Wfq_core.Kp_queue_fps.(
      Fp_cnt.create_with ~max_failures:64 ~help:Help_one_cyclic
        ~phase:Phase_counter ~num_threads:1 ())
  in
  let fps_pair =
    profile (fun () ->
        Fp_cnt.enqueue fq ~tid:0 1;
        ignore (Fp_cnt.dequeue fq ~tid:0))
  in
  let kq =
    Wfq_core.Kp_queue.(
      Kp_cnt.create_with ~help:Help_all ~phase:Phase_scan ~num_threads:1 ())
  in
  let kp_pair =
    profile (fun () ->
        Kp_cnt.enqueue kq ~tid:0 1;
        ignore (Kp_cnt.dequeue kq ~tid:0))
  in
  (* Fast path: append CAS + tail CAS (enqueue), deq_tid claim CAS +
     head CAS (dequeue) — 4 RMWs, none failing; the base KP three-step
     scheme pays 7 for the same pair. *)
  Alcotest.(check int) "fps pair: 4 RMWs" 4 (rmws fps_pair);
  Alcotest.(check int) "fps pair: no failed CAS" 0 fps_pair.Cnt.cas_failure;
  Alcotest.(check int) "kp pair: 7 RMWs" 7 (rmws kp_pair);
  Alcotest.(check bool)
    (Printf.sprintf "fps %d < kp %d" (rmws fps_pair) (rmws kp_pair))
    true
    (rmws fps_pair < rmws kp_pair);
  Alcotest.(check int) "both ops took the fast path" 2
    (Fp_cnt.fast_path_hits fq);
  Alcotest.(check int) "no slow-path entries" 0 (Fp_cnt.slow_path_entries fq)

(* mf=0 disables the fast path: the pair must cost at least base KP's 7
   RMWs (opt-2's phase counter and the slow_pending bookkeeping add
   more), and the probes must attribute every op to the slow path. *)
let test_mf0_degenerates_to_slow_path () =
  let fq =
    Wfq_core.Kp_queue_fps.(
      Fp_cnt.create_with ~max_failures:0 ~help:Help_one_cyclic
        ~phase:Phase_counter ~num_threads:1 ())
  in
  let pair =
    profile (fun () ->
        Fp_cnt.enqueue fq ~tid:0 1;
        ignore (Fp_cnt.dequeue fq ~tid:0))
  in
  Alcotest.(check bool)
    (Printf.sprintf "slow pair costs >= 7 RMWs (got %d)" (rmws pair))
    true
    (rmws pair >= 7);
  Alcotest.(check int) "no fast hits" 0 (Fp_cnt.fast_path_hits fq);
  Alcotest.(check int) "two slow entries" 2 (Fp_cnt.slow_path_entries fq);
  Alcotest.(check (result unit string)) "quiescent invariants" (Ok ())
    (Fp_cnt.check_quiescent_invariants fq)

(* ---------------------------------------------------------------- *)
(* Real domains                                                       *)
(* ---------------------------------------------------------------- *)

module A = Wfq_primitives.Real_atomic
module Fp = Wfq_core.Kp_queue_fps.Make (A)

let fp_create ~max_failures ~num_threads =
  Wfq_core.Kp_queue_fps.(
    Fp.create_with ~max_failures ~help:Help_one_cyclic ~phase:Phase_counter
      ~num_threads ())

let encode ~producer ~seq = (producer * 1_000_000) + seq
let producer_of v = v / 1_000_000
let seq_of v = v mod 1_000_000

(* 8 domains (4 producers, 4 consumers): conservation and per-producer
   FIFO order, the test_queues_conc discipline, at the thread count the
   acceptance criteria name. *)
let test_8_domains ~max_failures () =
  let producers = 4 and consumers = 4 and per_producer = 2_000 in
  let num_threads = producers + consumers in
  let q = fp_create ~max_failures ~num_threads in
  let total = producers * per_producer in
  let consumed = Atomic.make 0 in
  let logs = Array.make consumers [] in
  let producer p () =
    for seq = 1 to per_producer do
      Fp.enqueue q ~tid:p (encode ~producer:p ~seq)
    done
  in
  let consumer c () =
    let tid = producers + c in
    let got = ref [] in
    while Atomic.get consumed < total do
      match Fp.dequeue q ~tid with
      | Some v ->
          got := v :: !got;
          Atomic.incr consumed
      | None -> Domain.cpu_relax ()
    done;
    logs.(c) <- List.rev !got
  in
  let domains =
    List.init producers (fun p -> Domain.spawn (producer p))
    @ List.init consumers (fun c -> Domain.spawn (consumer c))
  in
  List.iter Domain.join domains;
  let seen = Hashtbl.create total in
  Array.iter
    (List.iter (fun v ->
         if Hashtbl.mem seen v then
           Alcotest.fail (Printf.sprintf "value %d seen twice" v);
         Hashtbl.add seen v ()))
    logs;
  Alcotest.(check int) "every value consumed exactly once" total
    (Hashtbl.length seen);
  Alcotest.(check int) "queue empty" 0 (Fp.length q);
  Array.iter
    (fun log ->
      let last_seq = Array.make producers 0 in
      List.iter
        (fun v ->
          let p = producer_of v and s = seq_of v in
          if s <= last_seq.(p) then
            Alcotest.fail
              (Printf.sprintf "per-producer order violated (p%d: %d after %d)"
                 p s last_seq.(p));
          last_seq.(p) <- s)
        log)
    logs;
  Alcotest.(check (result unit string)) "quiescent invariants" (Ok ())
    (Fp.check_quiescent_invariants q);
  (* Every one of the 2*total productive ops took exactly one path;
     consumers' observed-empty dequeues add on top. *)
  Alcotest.(check bool) "path probes cover all ops" true
    (Fp.fast_path_hits q + Fp.slow_path_entries q >= 2 * total)

(* With a 1-failure budget, a contended run must push some operations
   onto the slow path; retry with growing pressure rather than flaking
   on a quiet scheduler. *)
let test_contention_reaches_slow_path () =
  let saw_slow = ref 0 in
  let attempt iters =
    let threads = 4 in
    let q = fp_create ~max_failures:1 ~num_threads:threads in
    let domains =
      List.init threads (fun tid ->
          Domain.spawn (fun () ->
              for i = 1 to iters do
                Fp.enqueue q ~tid (encode ~producer:tid ~seq:i);
                ignore (Fp.dequeue q ~tid)
              done))
    in
    List.iter Domain.join domains;
    saw_slow := Fp.slow_path_entries q;
    !saw_slow > 0
  in
  let rec try_sizes = function
    | [] ->
        Alcotest.fail
          "no slow-path entry in any contended run with max_failures = 1"
    | iters :: rest -> if not (attempt iters) then try_sizes rest
  in
  try_sizes [ 5_000; 20_000; 50_000; 100_000 ];
  Alcotest.(check bool)
    (Printf.sprintf "slow path entered (%d times)" !saw_slow)
    true (!saw_slow > 0)

(* Strict pairs: no dequeue in an enqueue-dequeue pair may observe
   empty — the linearizability smoke test the benchmarks also rely on. *)
let test_pairs_never_empty ~max_failures () =
  let threads = 4 and iters = 3_000 in
  let q = fp_create ~max_failures ~num_threads:threads in
  let empties = Atomic.make 0 in
  let domains =
    List.init threads (fun tid ->
        Domain.spawn (fun () ->
            for i = 1 to iters do
              Fp.enqueue q ~tid (encode ~producer:tid ~seq:i);
              match Fp.dequeue q ~tid with
              | Some _ -> ()
              | None -> Atomic.incr empties
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "no dequeue observed empty" 0 (Atomic.get empties);
  Alcotest.(check int) "balanced" 0 (Fp.length q)

(* ---------------------------------------------------------------- *)
(* Construction and probes                                            *)
(* ---------------------------------------------------------------- *)

let test_create_validation () =
  let check_invalid name msg f =
    Alcotest.check_raises name (Invalid_argument msg) (fun () ->
        ignore (f () : int Fp.t))
  in
  Wfq_core.Kp_queue_fps.(
    check_invalid "num_threads" "Kp_queue_fps.create: num_threads" (fun () ->
        Fp.create_with ~help:Help_all ~phase:Phase_scan ~num_threads:0 ());
    check_invalid "max_failures" "Kp_queue_fps.create: max_failures must be >= 0"
      (fun () ->
        Fp.create_with ~max_failures:(-1) ~help:Help_all ~phase:Phase_scan
          ~num_threads:1 ());
    check_invalid "chunk" "Kp_queue_fps.create: chunk size must be positive"
      (fun () ->
        Fp.create_with ~help:(Help_chunk 0) ~phase:Phase_scan ~num_threads:1
          ()))

let test_probes_sequential () =
  let q = fp_create ~max_failures:64 ~num_threads:2 in
  Alcotest.(check int) "max_failures probe" 64 (Fp.max_failures q);
  Alcotest.(check bool) "no pending" false (Fp.pending_of q ~tid:0);
  Alcotest.(check int) "phase -1 before any slow op" (-1)
    (Fp.phase_of q ~tid:0);
  Fp.enqueue q ~tid:0 1;
  Fp.enqueue q ~tid:1 2;
  Alcotest.(check int) "fast hits split per tid" 1
    (Fp.fast_path_hits_of q ~tid:0);
  Alcotest.(check int) "fast hits total" 2 (Fp.fast_path_hits q);
  Alcotest.(check (list int)) "fifo" [ 1; 2 ] (Fp.to_list q);
  Alcotest.(check (option int)) "deq" (Some 1) (Fp.dequeue q ~tid:1);
  Alcotest.(check int) "length" 1 (Fp.length q);
  Alcotest.(check bool) "not empty" false (Fp.is_empty q);
  Alcotest.(check (result unit string)) "invariants" (Ok ())
    (Fp.check_quiescent_invariants q)

(* Sharded front-end over FPS shards: the Wfq_shard wiring. *)
module Sh = Wfq_shard.Shard.Make (A)

let test_shard_fps_backend () =
  let threads = 4 in
  let q =
    Sh.create ~policy:Wfq_shard.Shard.Tid_affine
      ~backend:(Wfq_shard.Shard.Fps { max_failures = 8 })
      ~shards:2 ~num_threads:threads ()
  in
  Alcotest.(check bool) "backend probe" true
    (Sh.backend q = Wfq_shard.Shard.Fps { max_failures = 8 });
  let per = 2_000 in
  let domains =
    List.init threads (fun tid ->
        Domain.spawn (fun () ->
            for seq = 1 to per do
              Sh.enqueue q ~tid (encode ~producer:tid ~seq)
            done))
  in
  List.iter Domain.join domains;
  (* Sequential drain: conservation + per-producer order (each producer's
     elements share a shard under Tid_affine, so their order survives). *)
  let last_seq = Array.make threads 0 in
  let count = ref 0 in
  let rec drain () =
    match Sh.dequeue q ~tid:0 with
    | None -> ()
    | Some v ->
        incr count;
        let p = producer_of v and s = seq_of v in
        if s <> last_seq.(p) + 1 then
          Alcotest.fail
            (Printf.sprintf "producer %d out of order: %d after %d" p s
               last_seq.(p));
        last_seq.(p) <- s;
        drain ()
  in
  drain ();
  Alcotest.(check int) "all present" (threads * per) !count;
  Alcotest.(check (result unit string)) "shard invariants" (Ok ())
    (Sh.check_quiescent_invariants q)

let () =
  Alcotest.run "fps"
    [
      ("systematic (preemption-bounded)", systematic_tests);
      ("fuzz (random schedules)", fuzz_tests);
      ( "regressions",
        [
          Alcotest.test_case "stale helper bounded by descriptor phase"
            `Quick test_stale_helper_phase_bound_regression;
        ] );
      ( "cost model",
        [
          Alcotest.test_case "uncontended pair cheaper than base KP" `Quick
            test_fps_pair_cheaper_than_kp;
          Alcotest.test_case "mf=0 degenerates to pure slow path" `Quick
            test_mf0_degenerates_to_slow_path;
        ] );
      ( "domains",
        [
          Alcotest.test_case "8 domains, mf=64: conservation + order" `Quick
            (test_8_domains ~max_failures:64);
          Alcotest.test_case "8 domains, mf=1: conservation + order" `Quick
            (test_8_domains ~max_failures:1);
          Alcotest.test_case "contention reaches the slow path (mf=1)" `Quick
            test_contention_reaches_slow_path;
          Alcotest.test_case "pairs never observe empty (mf=64)" `Quick
            (test_pairs_never_empty ~max_failures:64);
          Alcotest.test_case "pairs never observe empty (mf=1)" `Quick
            (test_pairs_never_empty ~max_failures:1);
        ] );
      ( "construction & probes",
        [
          Alcotest.test_case "create_with validation" `Quick
            test_create_validation;
          Alcotest.test_case "probes (sequential)" `Quick
            test_probes_sequential;
          Alcotest.test_case "shard front-end over fps shards" `Quick
            test_shard_fps_backend;
        ] );
    ]
