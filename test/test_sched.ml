(* Scheduler test suite, in three tiers:

   1. Deterministic single-worker unit tests on real atomics: the
      [step]/[drain] core makes fiber interleaving a plain function of
      the run-queue's FIFO order, so spawn/yield/await orderings, the
      await fast path, exception routing and fiber-count conservation
      are all pinned exactly.
   2. Real parallel runs: [run] at 4 domains with conservation checks,
      and the deterministic 3-worker steal test pinning that an idle
      worker's sweep visits victims in {!Wfq_shard.Steal_order} order.
   3. The simulator plane: the same functor instantiated over
      [Sim_atomic], first deterministically (forwarding of the sim's
      yield-per-access effects through the scheduler's shallow
      handlers), then DPOR litmuses for the two racy hand-offs the
      scheduler adds on top of the queues — steal (two workers racing
      to dequeue the same fiber) and spawn/await/complete (waiter CAS
      vs completion exchange). No fiber may be lost or run twice. *)

module A = Wfq_primitives.Real_atomic
module SA = Wfq_sim.Sim_atomic
module S = Wfq_sim.Scheduler
module E = Wfq_sim.Explore
module M = Wfq_obsv.Metrics
module Sched = Wfq_sched.Sched
module Kp_sched = Sched.Make (A) (Sched.Rq_kp (A))
module Fps_sched = Sched.Make (A) (Sched.Rq_fps_pooled (A))
module Shard_sched = Sched.Make (A) (Sched.Rq_shard (A))
module Sim_sched = Sched.Make (SA) (Sched.Rq_kp (SA))

(* The registry route: any registered backend as a run-queue through
   the uniform Rq_of adapter — here the polylog tournament tree. *)
module Poly_backend = (val Wfq_core.Backends.find "polylog")
module Poly_sched = Sched.Make (A) (Sched.Rq_of (Poly_backend) (A))

exception Boom

(* ------------------------------------------------------------------ *)
(* Single-worker deterministic core                                    *)
(* ------------------------------------------------------------------ *)

let test_yield_ordering () =
  let t = Kp_sched.create ~num_workers:1 () in
  let trace = ref [] in
  let log s = trace := s :: !trace in
  let _ =
    Kp_sched.submit t ~tid:0 (fun () ->
        log "A0";
        Kp_sched.yield ();
        log "A1")
  in
  let _ = Kp_sched.submit t ~tid:0 (fun () -> log "B") in
  let slices = Kp_sched.drain t ~tid:0 in
  (* A yields behind B: one FIFO run-queue fixes the order exactly. *)
  Alcotest.(check (list string))
    "yield goes behind the queue" [ "A0"; "B"; "A1" ] (List.rev !trace);
  Alcotest.(check int) "A took 2 slices, B took 1" 3 slices;
  Alcotest.(check int) "no fiber pending" 0 (Kp_sched.pending_fibers t);
  Alcotest.(check int) "2 spawned" 2 (Kp_sched.fibers_spawned t);
  Alcotest.(check int) "2 completed" 2 (Kp_sched.fibers_completed t)

let test_spawn_await_ordering () =
  let t = Kp_sched.create ~num_workers:1 () in
  let trace = ref [] in
  let log s = trace := s :: !trace in
  let pr =
    Kp_sched.submit t ~tid:0 (fun () ->
        log "P0";
        let c =
          Kp_sched.spawn (fun () ->
              log "C";
              21 * 2)
        in
        let v = Kp_sched.await c in
        log "P1";
        v)
  in
  ignore (Kp_sched.drain t ~tid:0 : int);
  (* The parent runs up to the await, suspends (the child has not run
     yet), the child completes, the parent is woken with the value. *)
  Alcotest.(check (list string))
    "await suspends until the child completes" [ "P0"; "C"; "P1" ]
    (List.rev !trace);
  Alcotest.(check bool) "value delivered" true
    (Kp_sched.result pr = Some (Ok 42));
  Alcotest.(check int) "conservation" 0 (Kp_sched.pending_fibers t)

let test_await_completed_fast_path () =
  let t = Kp_sched.create ~num_workers:1 () in
  let trace = ref [] in
  let log s = trace := s :: !trace in
  let pr =
    Kp_sched.submit t ~tid:0 (fun () ->
        let c = Kp_sched.spawn (fun () -> log "C") in
        (* Two yields run the child to completion before the await, so
           the await takes the already-completed fast path: the parent
           continues in the same slice, no suspension. *)
        Kp_sched.yield ();
        Kp_sched.yield ();
        Kp_sched.await c;
        log "P")
  in
  ignore (Kp_sched.drain t ~tid:0 : int);
  Alcotest.(check (list string)) "child first" [ "C"; "P" ] (List.rev !trace);
  Alcotest.(check bool) "done" true (Kp_sched.result pr = Some (Ok ()))

let test_conservation_tree () =
  (* A binary spawn tree of depth 4: 2^5 - 1 = 31 fibers, every one
     spawned and completed exactly once, result = leaf count. *)
  let t = Kp_sched.create ~num_workers:1 () in
  let module K = Kp_sched in
  let rec tree d =
    if d = 0 then 1
    else
      let a = K.spawn (fun () -> tree (d - 1)) in
      let b = K.spawn (fun () -> tree (d - 1)) in
      K.await a + K.await b
  in
  let pr = K.submit t ~tid:0 (fun () -> tree 4) in
  ignore (K.drain t ~tid:0 : int);
  Alcotest.(check bool) "16 leaves" true (K.result pr = Some (Ok 16));
  Alcotest.(check int) "31 fibers spawned" 31 (K.fibers_spawned t);
  Alcotest.(check int) "31 fibers completed" 31 (K.fibers_completed t);
  Alcotest.(check int) "none pending" 0 (K.pending_fibers t);
  Alcotest.(check int) "run-queue drained" 0 (K.run_queue_depth t 0)

let test_await_failed_child () =
  let t = Kp_sched.create ~num_workers:1 () in
  let pr =
    Kp_sched.submit t ~tid:0 (fun () ->
        let c = Kp_sched.spawn (fun () -> raise Boom) in
        match Kp_sched.await c with
        | () -> "returned"
        | exception Boom -> "caught")
  in
  ignore (Kp_sched.drain t ~tid:0 : int);
  (* The child fails after the parent suspends: the wakeup is a Cancel
     task, re-raising Boom at the parent's await point. *)
  Alcotest.(check bool) "await re-raises the child's exception" true
    (Kp_sched.result pr = Some (Ok "caught"));
  Alcotest.(check int) "both fibers completed" 2 (Kp_sched.fibers_completed t);
  (* And the already-failed fast path: the promise is completed before
     the await, which must discontinue immediately. *)
  let pr2 =
    Kp_sched.submit t ~tid:0 (fun () ->
        let c = Kp_sched.spawn (fun () -> raise Boom) in
        Kp_sched.yield ();
        Kp_sched.yield ();
        match Kp_sched.await c with
        | () -> "returned"
        | exception Boom -> "caught late")
  in
  ignore (Kp_sched.drain t ~tid:0 : int);
  Alcotest.(check bool) "failed fast path re-raises too" true
    (Kp_sched.result pr2 = Some (Ok "caught late"))

let test_run_single_domain () =
  let t = Kp_sched.create ~num_workers:1 () in
  let module K = Kp_sched in
  let rec tree d =
    if d = 0 then 1
    else
      let a = K.spawn (fun () -> tree (d - 1)) in
      let b = K.spawn (fun () -> tree (d - 1)) in
      K.await a + K.await b
  in
  Alcotest.(check int) "run returns main's value" 8 (K.run t (fun () -> tree 3));
  Alcotest.(check int) "conservation" 0 (K.pending_fibers t)

let test_run_reraises () =
  let t = Kp_sched.create ~num_workers:1 () in
  Alcotest.check_raises "main's exception escapes run" Boom (fun () ->
      Kp_sched.run t (fun () -> raise Boom))

(* Same spawn/await tree on the Rq_of-adapted polylog run-queue: the
   registry backend drives the scheduler with no per-backend adapter. *)
let test_run_rq_of_polylog () =
  let t = Poly_sched.create ~num_workers:1 () in
  let module K = Poly_sched in
  let rec tree d =
    if d = 0 then 1
    else
      let a = K.spawn (fun () -> tree (d - 1)) in
      let b = K.spawn (fun () -> tree (d - 1)) in
      K.await a + K.await b
  in
  Alcotest.(check int) "run returns main's value" 8 (K.run t (fun () -> tree 3));
  Alcotest.(check int) "conservation" 0 (K.pending_fibers t)

(* ------------------------------------------------------------------ *)
(* Stealing                                                           *)
(* ------------------------------------------------------------------ *)

let test_steal_follows_steal_order () =
  (* Worker 0's queue is empty; queues 1 and 2 hold one fiber each. Its
     steal sweep must visit victims in Steal_order order: 1 then 2. *)
  let t = Kp_sched.create ~num_workers:3 () in
  let trace = ref [] in
  let log s = trace := s :: !trace in
  let _ = Kp_sched.submit t ~tid:1 (fun () -> log "q1") in
  let _ = Kp_sched.submit t ~tid:2 (fun () -> log "q2") in
  Alcotest.(check int) "queue 1 loaded" 1 (Kp_sched.run_queue_depth t 1);
  Alcotest.(check int) "queue 2 loaded" 1 (Kp_sched.run_queue_depth t 2);
  Alcotest.(check bool) "first step steals" true (Kp_sched.step t ~tid:0);
  Alcotest.(check (list string)) "victim 1 first" [ "q1" ] (List.rev !trace);
  Alcotest.(check bool) "second step steals" true (Kp_sched.step t ~tid:0);
  Alcotest.(check (list string))
    "then victim 2" [ "q1"; "q2" ] (List.rev !trace);
  Alcotest.(check bool) "then idle" false (Kp_sched.step t ~tid:0);
  Alcotest.(check int) "two wins" 2 (Kp_sched.steals_won t);
  (* 3 attempts: the two winning sweeps plus the final idle one. *)
  Alcotest.(check int) "three sweeps entered" 3 (Kp_sched.steal_attempts t)

let test_multidomain_stress () =
  (* 4 domains over the pooled fast-path/slow-path backend: a 32-wide
     fan-out with a yield inside each subfiber, summed by awaits.
     Everything beyond worker 0 arrives by stealing. *)
  let module F = Fps_sched in
  let t = F.create ~num_workers:4 () in
  let total =
    F.run t (fun () ->
        let ps =
          List.init 32 (fun i ->
              F.spawn (fun () ->
                  F.yield ();
                  i))
        in
        List.fold_left (fun acc p -> acc + F.await p) 0 ps)
  in
  Alcotest.(check int) "fan-out sum" 496 total;
  Alcotest.(check int) "33 spawned" 33 (F.fibers_spawned t);
  Alcotest.(check int) "33 completed" 33 (F.fibers_completed t);
  Alcotest.(check int) "none pending" 0 (F.pending_fibers t);
  let depths = List.init 4 (fun i -> F.run_queue_depth t i) in
  Alcotest.(check (list int)) "all queues drained" [ 0; 0; 0; 0 ] depths

(* ------------------------------------------------------------------ *)
(* Observability                                                      *)
(* ------------------------------------------------------------------ *)

(* The uniform RUN_QUEUE contract, exercised through all three
   backends: the scheduler's metrics dump must contain the scheduler
   counters plus, for every per-worker run-queue, its push/take
   counters and the backend-registered depth gauge. *)
let metric_names (module Sch : Sched.S) =
  let t = Sch.create ~num_workers:2 () in
  let reg = M.create () in
  Sch.register_metrics t reg ~prefix:"sched";
  let _ = Sch.submit t ~tid:0 (fun () -> Sch.yield ()) in
  ignore (Sch.drain t ~tid:0 : int);
  (reg, List.map fst (M.entries reg))

let test_metrics_dump_uniform () =
  List.iter
    (fun ((module Sch : Sched.S) as sch) ->
      let reg, names = metric_names sch in
      let expect n =
        Alcotest.(check bool)
          (Printf.sprintf "%s: %s registered" Sch.name n)
          true (List.mem n names)
      in
      List.iter expect
        [
          "sched.fibers_spawned";
          "sched.fibers_completed";
          "sched.steal_attempts";
          "sched.steals_won";
          "sched.pending_fibers";
        ];
      for i = 0 to 1 do
        List.iter expect
          [
            Printf.sprintf "sched.rq%d.pushes" i;
            Printf.sprintf "sched.rq%d.takes" i;
            Printf.sprintf "sched.rq%d.depth" i;
          ]
      done;
      Alcotest.(check (option int))
        (Sch.name ^ ": spawned total via registry")
        (Some 1)
        (M.value reg "sched.fibers_spawned");
      Alcotest.(check (option int))
        (Sch.name ^ ": rq0 drained")
        (Some 0)
        (M.value reg "sched.rq0.depth"))
    [
      (module Kp_sched : Sched.S);
      (module Fps_sched : Sched.S);
      (module Shard_sched : Sched.S);
    ]

let test_obsv_histograms () =
  let reg = M.create () in
  let obsv = Sched.metrics reg ~prefix:"sched" ~slots:1 in
  let ticks = ref 0 in
  let clock () =
    incr ticks;
    !ticks * 100
  in
  let t = Kp_sched.create ~obsv ~clock ~num_workers:1 () in
  for _ = 1 to 3 do
    ignore (Kp_sched.submit t ~tid:0 (fun () -> ()))
  done;
  ignore (Kp_sched.drain t ~tid:0 : int);
  (match M.histogram_summary reg "sched.fiber_latency_ns" with
  | None -> Alcotest.fail "fiber latency histogram missing"
  | Some s ->
      Alcotest.(check int) "one latency sample per fiber" 3
        s.Wfq_obsv.Histogram.count;
      Alcotest.(check bool) "latencies positive" true
        (s.Wfq_obsv.Histogram.max > 0));
  match M.histogram_summary reg "sched.runq_depth" with
  | None -> Alcotest.fail "run-queue depth histogram missing"
  | Some s ->
      Alcotest.(check int) "one depth sample per push" 3
        s.Wfq_obsv.Histogram.count;
      (* Pushes happen back-to-back before the drain: depths 1, 2, 3. *)
      Alcotest.(check int) "max depth seen" 3 s.Wfq_obsv.Histogram.max

(* ------------------------------------------------------------------ *)
(* The simulator plane                                                *)
(* ------------------------------------------------------------------ *)

(* Deterministic sim run: the whole scheduler (KP run-queues included)
   executes inside one simulator fiber, every shared access forwarded
   through the scheduler's shallow handlers to the sim scheduler. This
   is the direct regression test for handler forwarding. *)
let test_sim_deterministic () =
  let t = Sim_sched.create ~num_workers:1 () in
  let trace = ref [] in
  let log s = trace := s :: !trace in
  let pr =
    S.ignore_yields (fun () ->
        Sim_sched.submit t ~tid:0 (fun () ->
            log "P0";
            let c =
              Sim_sched.spawn (fun () ->
                  log "C";
                  7)
            in
            Sim_sched.yield ();
            let v = Sim_sched.await c in
            log "P1";
            v))
  in
  let r = S.run [| (fun () -> ignore (Sim_sched.drain t ~tid:0 : int)) |] in
  Alcotest.(check bool) "sim run completed" true (r.S.outcome = S.All_finished);
  Alcotest.(check (list string))
    "same ordering as on real atomics" [ "P0"; "C"; "P1" ]
    (List.rev !trace);
  Alcotest.(check bool) "value through sim plane" true
    (S.ignore_yields (fun () -> Sim_sched.result pr) = Some (Ok 7));
  Alcotest.(check int) "conservation" 0
    (S.ignore_yields (fun () -> Sim_sched.pending_fibers t))

(* DPOR litmus 1 — steal hand-off. One fiber is submitted to worker
   0's queue; both workers then race a single [step]: worker 0 dequeues
   locally while worker 1's sweep steals from the same queue. Under
   every interleaving exactly one of them must win the fiber. *)
let steal_litmus_make () =
  let t = Sim_sched.create ~num_workers:2 () in
  let hits = ref 0 in
  let pr =
    S.ignore_yields (fun () ->
        Sim_sched.submit t ~tid:0 (fun () -> incr hits))
  in
  let worker tid () = ignore (Sim_sched.step t ~tid : bool) in
  let check (_ : S.result) =
    (* Quiescent completion of whatever the bounded steps left behind,
       then conservation: the fiber ran exactly once, nothing lost. *)
    S.ignore_yields (fun () ->
        ignore (Sim_sched.drain t ~tid:0 : int);
        if !hits <> 1 then
          Error (Printf.sprintf "fiber ran %d times" !hits)
        else if Sim_sched.pending_fibers t <> 0 then Error "fiber lost"
        else if Sim_sched.fibers_completed t <> 1 then
          Error "completion not recorded"
        else
          match Sim_sched.result pr with
          | Some (Ok ()) -> Ok ()
          | _ -> Error "promise unfulfilled")
  in
  ([| worker 0; worker 1 |], check)

let test_dpor_steal_handoff () =
  let r = E.dpor ~max_schedules:200_000 ~make:steal_litmus_make () in
  (match r.E.failure with
  | None -> ()
  | Some (_, m) -> Alcotest.failf "steal hand-off violation: %s" m);
  Alcotest.(check bool) "trace space exhausted" true r.E.exhausted;
  Alcotest.(check bool) "non-trivial exploration" true (r.E.schedules > 1)

(* DPOR litmus 2 — spawn/await/complete hand-off. Worker 0 starts a
   parent that spawns a child and awaits it; worker 1 races to steal
   the child (or the parent's wakeup). Explores the waiter-CAS vs
   completion-exchange race on the promise cell: no lost wakeup, no
   double resume. *)
let await_litmus_make () =
  let t = Sim_sched.create ~num_workers:2 () in
  let got = ref (-1) in
  let _pr =
    S.ignore_yields (fun () ->
        Sim_sched.submit t ~tid:0 (fun () ->
            let c = Sim_sched.spawn (fun () -> 7) in
            got := Sim_sched.await c))
  in
  let worker tid steps () =
    for _ = 1 to steps do
      ignore (Sim_sched.step t ~tid : bool)
    done
  in
  let check (_ : S.result) =
    S.ignore_yields (fun () ->
        ignore (Sim_sched.drain t ~tid:0 : int);
        if !got <> 7 then Error (Printf.sprintf "await returned %d" !got)
        else if Sim_sched.pending_fibers t <> 0 then Error "fiber lost"
        else if Sim_sched.fibers_spawned t <> 2 then Error "spawn miscount"
        else if Sim_sched.fibers_completed t <> 2 then
          Error "completion miscount"
        else Ok ())
  in
  ([| worker 0 2; worker 1 2 |], check)

let test_dpor_await_handoff () =
  (* The access count here (two KP dequeue attempts per worker plus the
     promise protocol) puts exhaustion out of reach of a unit-test
     budget; a bounded clean pass is the acceptance bar, per the DPOR
     convention for large scenarios. *)
  let r = E.dpor ~max_schedules:25_000 ~make:await_litmus_make () in
  (match r.E.failure with
  | None -> ()
  | Some (_, m) -> Alcotest.failf "await hand-off violation: %s" m);
  Alcotest.(check bool) "explored a real schedule set" true
    (r.E.schedules > 100)

let () =
  Alcotest.run "sched"
    [
      ( "deterministic core",
        [
          Alcotest.test_case "yield ordering pinned" `Quick
            test_yield_ordering;
          Alcotest.test_case "spawn/await ordering + value" `Quick
            test_spawn_await_ordering;
          Alcotest.test_case "await completed fast path" `Quick
            test_await_completed_fast_path;
          Alcotest.test_case "fiber-count conservation (31-fiber tree)"
            `Quick test_conservation_tree;
          Alcotest.test_case "await re-raises child failure" `Quick
            test_await_failed_child;
          Alcotest.test_case "run at 1 domain" `Quick test_run_single_domain;
          Alcotest.test_case "run on Rq_of polylog run-queue" `Quick
            test_run_rq_of_polylog;
          Alcotest.test_case "run re-raises main's exception" `Quick
            test_run_reraises;
        ] );
      ( "stealing",
        [
          Alcotest.test_case "sweep follows Steal_order" `Quick
            test_steal_follows_steal_order;
          Alcotest.test_case "4-domain fan-out stress" `Slow
            test_multidomain_stress;
        ] );
      ( "observability",
        [
          Alcotest.test_case "uniform metrics dump (3 backends)" `Quick
            test_metrics_dump_uniform;
          Alcotest.test_case "depth + latency histograms" `Quick
            test_obsv_histograms;
        ] );
      ( "sim",
        [
          Alcotest.test_case "deterministic run through sim plane" `Quick
            test_sim_deterministic;
          Alcotest.test_case "dpor: steal hand-off" `Slow
            test_dpor_steal_handoff;
          Alcotest.test_case "dpor: spawn/await/complete hand-off" `Slow
            test_dpor_await_handoff;
        ] );
    ]
