(* Tests for the sharded front-end (lib/shard): sequential semantics
   against a per-shard FIFO model, the quiescent never-false-empty sweep
   guarantee, batch operations, the ticket-amortization cost profile
   (via counted atomics), and model checking under the deterministic
   simulator with per-shard linearizability.

   The ordering contract under test (see lib/shard/shard.mli): each
   shard is a strict linearizable FIFO; global order across shards is
   relaxed; a dequeue sweeps every shard before returning [None], so at
   quiescence [None] implies the whole queue is empty. *)

module P = Wfq_shard.Shard
module Sh = Wfq_shard.Shard.Make (Wfq_primitives.Real_atomic)

let policies =
  [ (P.Round_robin, "rr"); (P.Tid_affine, "affine");
    (P.Length_aware, "length") ]

let shard_counts = [ 1; 2; 3; 4 ]

let check_invariants t =
  match Sh.check_quiescent_invariants t with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

(* ---------------------------------------------------------------- *)
(* Construction                                                      *)
(* ---------------------------------------------------------------- *)

let test_create_validation () =
  Alcotest.check_raises "zero shards"
    (Invalid_argument "Shard.create: shards must be positive") (fun () ->
      ignore (Sh.create ~shards:0 ~num_threads:1 () : int Sh.t));
  Alcotest.check_raises "zero threads"
    (Invalid_argument "Shard.create: num_threads") (fun () ->
      ignore (Sh.create ~shards:2 ~num_threads:0 () : int Sh.t));
  let t : int Sh.t = Sh.create ~num_threads:2 () in
  Alcotest.(check int) "default shard count" 4 (Sh.shards t);
  Alcotest.(check bool) "default policy" true (Sh.policy t = P.Round_robin);
  let s : int Sh.t = Sh.create_strict ~num_threads:2 () in
  Alcotest.(check int) "strict is single-shard" 1 (Sh.shards s)

(* The [Registered id] constructor: every backend in the
   Wfq_core.Backends registry must work as a shard with no edit to the
   front-end — the QUEUE_BACKEND uniformity contract. *)
let test_registered_backends () =
  List.iter
    (fun id ->
      let t : int Sh.t =
        Sh.create ~backend:(P.Registered id) ~shards:2 ~num_threads:2 ()
      in
      Alcotest.(check bool)
        (id ^ ": backend recorded") true
        (Sh.backend t = P.Registered id);
      Sh.enqueue t ~tid:0 1;
      Sh.enqueue t ~tid:1 2;
      Alcotest.(check int) (id ^ ": length") 2 (Sh.length t);
      let a = Sh.dequeue t ~tid:0 in
      let b = Sh.dequeue t ~tid:1 in
      Alcotest.(check bool)
        (id ^ ": both elements served") true
        (a <> None && b <> None && a <> b);
      Alcotest.(check (option int)) (id ^ ": drained") None (Sh.dequeue t ~tid:0);
      check_invariants t)
    (Wfq_core.Backends.ids ());
  match Sh.create ~backend:(P.Registered "no-such") ~num_threads:1 () with
  | (_ : int Sh.t) -> Alcotest.fail "unknown registered id must be rejected"
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        "rejection names the id" true
        (String.length msg > 0
        && String.sub msg 0 12 = "Shard.create")

(* ---------------------------------------------------------------- *)
(* Sequential semantics vs a per-shard FIFO model                    *)
(* ---------------------------------------------------------------- *)

(* Random single-thread op sequence checked against an array of model
   FIFOs, one per shard. The white-box probes attribute each completed
   operation to its shard, so the model never guesses the policy's
   choice — it only demands that whatever shard served the operation
   behaves as a FIFO. *)
let test_sequential_model (policy, _) shards () =
  let nt = 3 in
  let t = Sh.create ~policy ~shards ~num_threads:nt () in
  let models = Array.init shards (fun _ -> Queue.create ()) in
  let pending = ref 0 in
  let enqueued = ref 0 and dequeued = ref 0 in
  let rng = Random.State.make [| 42; shards |] in
  let do_dequeue tid =
    match Sh.dequeue t ~tid with
    | None ->
        Alcotest.fail
          (Printf.sprintf "false empty: %d elements present" !pending)
    | Some v ->
        decr pending;
        incr dequeued;
        let s = Sh.last_dequeue_shard t ~tid in
        Alcotest.(check bool) "served shard in range" true
          (s >= 0 && s < shards);
        let expect = Queue.pop models.(s) in
        if expect <> v then
          Alcotest.fail
            (Printf.sprintf "shard %d FIFO violated: got %d, expected %d" s
               v expect)
  in
  for i = 1 to 400 do
    let tid = Random.State.int rng nt in
    if !pending > 0 && Random.State.bool rng then do_dequeue tid
    else begin
      Sh.enqueue t ~tid i;
      incr pending;
      incr enqueued;
      let s = Sh.last_enqueue_shard t ~tid in
      Alcotest.(check bool) "placed shard in range" true
        (s >= 0 && s < shards);
      Queue.push i models.(s)
    end
  done;
  (* Model and queue agree per shard before draining. *)
  Array.iteri
    (fun s m ->
      Alcotest.(check int)
        (Printf.sprintf "shard %d length" s)
        (Queue.length m) (Sh.shard_length t s))
    models;
  Alcotest.(check int) "total length" !pending (Sh.length t);
  while !pending > 0 do
    do_dequeue 0
  done;
  Alcotest.(check bool) "empty after drain" true (Sh.is_empty t);
  Alcotest.(check (option int)) "None only when empty" None
    (Sh.dequeue t ~tid:1);
  let st = Sh.stats t in
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 st in
  Alcotest.(check int) "stats: enqueues" !enqueued
    (sum (fun s -> s.P.enqueues));
  Alcotest.(check int) "stats: dequeues" !dequeued
    (sum (fun s -> s.P.dequeues));
  Alcotest.(check bool) "stats: the final None swept" true
    (sum (fun s -> s.P.empty_sweeps) >= 1);
  check_invariants t

(* Strict mode is a plain global FIFO regardless of which tid runs
   which operation. *)
let test_strict_global_fifo () =
  let t = Sh.create_strict ~num_threads:4 () in
  for i = 1 to 40 do
    Sh.enqueue t ~tid:(i mod 4) i
  done;
  for i = 1 to 40 do
    match Sh.dequeue t ~tid:((i + 1) mod 4) with
    | Some v -> Alcotest.(check int) "global FIFO order" i v
    | None -> Alcotest.fail "false empty"
  done;
  Alcotest.(check (option int)) "drained" None (Sh.dequeue t ~tid:0)

(* ---------------------------------------------------------------- *)
(* Quiescent sweep: None is only ever returned by an empty queue      *)
(* ---------------------------------------------------------------- *)

(* A single element, enqueued by any tid under any policy at any ticket
   offset, must be found by a dequeue from any other tid: the sweep
   visits every shard, so no placement can hide it. *)
let test_singleton_always_found (policy, _) shards () =
  let nt = 4 in
  for pre = 0 to shards do
    for enq_tid = 0 to nt - 1 do
      for deq_tid = 0 to nt - 1 do
        let t = Sh.create ~policy ~shards ~num_threads:nt () in
        (* Advance the tickets so the start shards vary. *)
        for i = 1 to pre do
          Sh.enqueue t ~tid:0 (-i);
          match Sh.dequeue t ~tid:0 with
          | Some _ -> ()
          | None -> Alcotest.fail "false empty during ticket advance"
        done;
        Sh.enqueue t ~tid:enq_tid 7;
        (match Sh.dequeue t ~tid:deq_tid with
        | Some 7 -> ()
        | Some v -> Alcotest.fail (Printf.sprintf "wrong element %d" v)
        | None ->
            Alcotest.fail
              (Printf.sprintf
                 "sweep missed the element (pre=%d enq_tid=%d deq_tid=%d)"
                 pre enq_tid deq_tid));
        Alcotest.(check (option int)) "then truly empty" None
          (Sh.dequeue t ~tid:deq_tid);
        check_invariants t
      done
    done
  done

(* ---------------------------------------------------------------- *)
(* Batch operations                                                  *)
(* ---------------------------------------------------------------- *)

let test_batch_round_robin_spread () =
  let t = Sh.create ~policy:P.Round_robin ~shards:4 ~num_threads:1 () in
  Sh.enqueue_batch t ~tid:0 [ 10; 20; 30; 40; 50; 60 ];
  (* A batch of k >= N spreads as N contiguous sub-batches over
     consecutive ticket-selected shards (docs/BATCHING.md): ticket 0
     starts at shard 0, which gets [10;20], shard 1 [30;40], then the
     two singleton remainders. *)
  Alcotest.(check (list int))
    "per-shard placement" [ 2; 2; 1; 1 ]
    (List.init 4 (Sh.shard_length t));
  Alcotest.(check (list int))
    "shard-major contents" [ 10; 20; 30; 40; 50; 60 ] (Sh.to_list t);
  (* dequeue_batch drains shard by shard, preserving per-shard order. *)
  let got = Sh.dequeue_batch t ~tid:0 ~n:6 in
  Alcotest.(check (list int)) "batch drain" [ 10; 20; 30; 40; 50; 60 ] got;
  Alcotest.(check bool) "empty" true (Sh.is_empty t);
  check_invariants t

let test_batch_contiguous_policies () =
  List.iter
    (fun policy ->
      let t = Sh.create ~policy ~shards:4 ~num_threads:4 () in
      Sh.enqueue_batch t ~tid:1 [ 1; 2; 3; 4; 5 ];
      let s = Sh.last_enqueue_shard t ~tid:1 in
      Alcotest.(check int) "whole batch in one shard" 5
        (Sh.shard_length t s);
      (* Intra-batch FIFO: the batch comes back in order. *)
      let got = Sh.dequeue_batch t ~tid:1 ~n:5 in
      Alcotest.(check (list int)) "intra-batch order" [ 1; 2; 3; 4; 5 ] got;
      check_invariants t)
    [ P.Tid_affine; P.Length_aware ]

let test_batch_edge_cases () =
  let t = Sh.create ~shards:3 ~num_threads:2 () in
  Sh.enqueue_batch t ~tid:0 [];
  Alcotest.(check bool) "empty batch is a no-op" true (Sh.is_empty t);
  Alcotest.(check (list int)) "dequeue_batch n=0" []
    (Sh.dequeue_batch t ~tid:0 ~n:0);
  Alcotest.check_raises "negative n"
    (Invalid_argument "Shard.dequeue_batch: n") (fun () ->
      ignore (Sh.dequeue_batch t ~tid:0 ~n:(-1)));
  Alcotest.(check (list int)) "batch on empty queue" []
    (Sh.dequeue_batch t ~tid:1 ~n:5);
  Sh.enqueue_batch t ~tid:0 [ 1; 2; 3 ];
  (* Asking for more than is present returns what exists — a partial
     batch implies a full empty sweep. *)
  Alcotest.(check int) "partial batch" 3
    (List.length (Sh.dequeue_batch t ~tid:1 ~n:10));
  check_invariants t

(* Length_aware keeps shards balanced under a single hot producer. *)
let test_length_aware_balances () =
  let shards = 4 in
  let t = Sh.create ~policy:P.Length_aware ~shards ~num_threads:1 () in
  for i = 1 to 200 do
    Sh.enqueue t ~tid:0 i
  done;
  let lens = List.init shards (Sh.shard_length t) in
  let mx = List.fold_left max 0 lens and mn = List.fold_left min 1000 lens in
  (* Two-choice placement keeps the spread well under a constant factor;
     a broken policy (all on one shard) would show 200 vs 0. *)
  Alcotest.(check bool)
    (Printf.sprintf "balanced: min %d, max %d" mn mx)
    true
    (mx - mn <= 100 && mn > 0);
  check_invariants t

(* ---------------------------------------------------------------- *)
(* Cost profile: ticket amortization, counted                        *)
(* ---------------------------------------------------------------- *)

(* The underlying KP queue never uses fetch-and-add (its phase counter
   is CAS-based), so the [fetch_adds] counter isolates shard-ticket
   acquisitions exactly: k singles cost k tickets, a k-batch costs one. *)
module CA = Wfq_primitives.Counted_atomic.Make (Wfq_primitives.Real_atomic)
module Sh_counted = Wfq_shard.Shard.Make (CA)

let test_ticket_amortization () =
  let t = Sh_counted.create ~policy:P.Round_robin ~shards:4 ~num_threads:1 () in
  CA.reset ();
  for i = 1 to 8 do
    Sh_counted.enqueue t ~tid:0 i
  done;
  Alcotest.(check int) "k singles, k tickets" 8
    (CA.snapshot ()).Wfq_primitives.Counted_atomic.fetch_adds;
  CA.reset ();
  Sh_counted.enqueue_batch t ~tid:0 [ 9; 10; 11; 12; 13; 14; 15; 16 ];
  Alcotest.(check int) "one batch, one ticket" 1
    (CA.snapshot ()).Wfq_primitives.Counted_atomic.fetch_adds;
  CA.reset ();
  let got = Sh_counted.dequeue_batch t ~tid:0 ~n:16 in
  Alcotest.(check int) "batch dequeue: one ticket" 1
    (CA.snapshot ()).Wfq_primitives.Counted_atomic.fetch_adds;
  Alcotest.(check int) "batch dequeue drained all" 16 (List.length got)

let test_tid_affine_no_tickets () =
  let t = Sh_counted.create ~policy:P.Tid_affine ~shards:4 ~num_threads:2 () in
  CA.reset ();
  for i = 1 to 8 do
    Sh_counted.enqueue t ~tid:1 i;
    ignore (Sh_counted.dequeue t ~tid:1)
  done;
  Alcotest.(check int) "affine selection needs no shared state" 0
    (CA.snapshot ()).Wfq_primitives.Counted_atomic.fetch_adds

(* ---------------------------------------------------------------- *)
(* Model checking under the simulator                                *)
(* ---------------------------------------------------------------- *)

module S = Wfq_sim.Scheduler
module E = Wfq_sim.Explore
module H = Wfq_lincheck.History
module C = Wfq_lincheck.Checker
module Sh_sim = Wfq_shard.Shard.Make (Wfq_sim.Sim_atomic)

type script = [ `Enq of int | `Deq ] list

(* One recorded operation, attributed to the shard that served it via
   the white-box probes (-1 = an empty sweep, which observed EVERY
   shard empty at some instant inside its interval). The simulator is
   single-domain, so a plain counter is an exact event clock. *)
type event = {
  thread : int;
  op : H.op;
  response : H.response;
  call : int;
  return : int;
  shard : int;
}

let to_completed (e : event) : H.completed =
  {
    H.thread = e.thread;
    op = e.op;
    response = e.response;
    call = e.call;
    return = e.return;
  }

(* Build an explorable scenario over a [shards]-shard queue. The check
   asserts, for every explored interleaving:
   - element conservation (nothing lost, nothing duplicated);
   - per-shard linearizability: the operations served by each shard,
     plus every empty sweep, form a linearizable FIFO history;
   - with a single shard, whole-history linearizability (strict mode);
   - the quiescent sweep guarantee: draining the final state yields
     exactly [length] elements before the first [None]. *)
let scenario ~policy ~shards (scripts : script list) () =
  let num_threads = List.length scripts in
  let q = Sh_sim.create ~policy ~shards ~num_threads () in
  let clock = ref 0 in
  let tick () = incr clock; !clock in
  let events = ref [] in
  let record e = events := e :: !events in
  let fiber tid script () =
    List.iter
      (function
        | `Enq v ->
            let call = tick () in
            Sh_sim.enqueue q ~tid v;
            record
              {
                thread = tid;
                op = H.Enq v;
                response = H.Done;
                call;
                return = tick ();
                shard = Sh_sim.last_enqueue_shard q ~tid;
              }
        | `Deq ->
            let call = tick () in
            let r = Sh_sim.dequeue q ~tid in
            let return = tick () in
            let shard = Sh_sim.last_dequeue_shard q ~tid in
            record
              {
                thread = tid;
                op = H.Deq;
                response =
                  (match r with Some v -> H.Got v | None -> H.Empty);
                call;
                return;
                shard = (match r with Some _ -> shard | None -> -1);
              })
      script
  in
  let check (_ : S.result) =
    let evs = List.sort (fun a b -> compare a.call b.call) !events in
    let enqueued =
      List.filter_map
        (fun e -> match e.op with H.Enq v -> Some v | H.Deq -> None)
        evs
    in
    let dequeued =
      List.filter_map
        (fun e ->
          match e.response with
          | H.Got v -> Some v
          | H.Done | H.Empty | H.Rejected -> None)
        evs
    in
    let left = S.ignore_yields (fun () -> Sh_sim.to_list q) in
    let sort = List.sort compare in
    if sort enqueued <> sort (dequeued @ left) then
      Error
        (Printf.sprintf "conservation violated: %d enq, %d deq, %d left"
           (List.length enqueued) (List.length dequeued) (List.length left))
    else
      let shard_ok s =
        let hist =
          List.filter (fun e -> e.shard = s || e.shard = -1) evs
          |> List.map to_completed
        in
        if C.is_linearizable hist then Ok ()
        else
          Error
            (Format.asprintf "shard %d not linearizable:@.%a" s
               C.pp_history hist)
      in
      let rec all_shards s =
        if s = shards then Ok ()
        else match shard_ok s with Ok () -> all_shards (s + 1) | e -> e
      in
      match all_shards 0 with
      | Error _ as e -> e
      | Ok () ->
          (* Quiescent drain: every remaining element is reachable
             before any [None]. *)
          S.ignore_yields (fun () ->
              let expected = List.length left in
              let rec drain got =
                match Sh_sim.dequeue q ~tid:0 with
                | Some _ -> drain (got + 1)
                | None -> got
              in
              let got = drain 0 in
              if got <> expected then
                Error
                  (Printf.sprintf
                     "quiescent sweep lost elements: drained %d of %d" got
                     expected)
              else Ok ())
  in
  (Array.of_list (List.mapi fiber scripts), check)

let scenarios : (string * script list) list =
  [
    ("2x enq race", [ [ `Enq 1 ]; [ `Enq 2 ] ]);
    ("enq vs deq on empty", [ [ `Enq 1 ]; [ `Deq ] ]);
    ("2x deq on singleton", [ [ `Deq ]; [ `Deq; `Enq 9 ] ]);
    ("pairs x2", [ [ `Enq 1; `Deq ]; [ `Enq 2; `Deq ] ]);
    ("producer/consumer", [ [ `Enq 1; `Enq 2 ]; [ `Deq; `Deq ] ]);
  ]

let explore_case ~policy ~shards name (scen_name, scripts) budget =
  Alcotest.test_case
    (Printf.sprintf "%s/%d: %s (<=%d preemptions)" name shards scen_name
       budget)
    `Quick
    (fun () ->
      let report =
        E.preemption_bounded ~budget ~max_schedules:60_000
          ~make:(scenario ~policy ~shards scripts) ()
      in
      (match report.E.failure with
      | Some (prefix, msg) ->
          Alcotest.fail
            (Printf.sprintf "schedule %s failed: %s"
               (String.concat "," (List.map string_of_int prefix))
               msg)
      | None -> ());
      Alcotest.(check bool) "search exhausted" true report.E.exhausted)

let fuzz_case ~policy ~shards name (scen_name, scripts) count =
  Alcotest.test_case
    (Printf.sprintf "%s/%d: %s (fuzz %d)" name shards scen_name count)
    `Quick
    (fun () ->
      let report =
        E.fuzz ~count ~make:(scenario ~policy ~shards scripts) ()
      in
      match report.E.failure with
      | Some (_, msg) -> Alcotest.fail msg
      | None -> ())

let systematic_tests =
  List.concat_map
    (fun (scen : string * script list) ->
      [
        (* Strict mode: the whole history is one shard's, so the
           per-shard check IS global linearizability. *)
        explore_case ~policy:P.Round_robin ~shards:1 "strict" scen 2;
        explore_case ~policy:P.Round_robin ~shards:2 "rr" scen 2;
        explore_case ~policy:P.Tid_affine ~shards:2 "affine" scen 2;
      ])
    scenarios

let fuzz_tests =
  let big : string * script list =
    ( "3 threads mixed",
      [
        [ `Enq 1; `Deq; `Enq 2 ];
        [ `Deq; `Enq 3; `Deq ];
        [ `Enq 4; `Deq; `Deq ];
      ] )
  in
  [
    fuzz_case ~policy:P.Round_robin ~shards:2 "rr" big 300;
    fuzz_case ~policy:P.Round_robin ~shards:3 "rr" big 300;
    fuzz_case ~policy:P.Tid_affine ~shards:2 "affine" big 300;
    fuzz_case ~policy:P.Length_aware ~shards:2 "length" big 300;
  ]

(* ---------------------------------------------------------------- *)
(* Steal_order: the sweep-order contract, pinned                     *)
(* ---------------------------------------------------------------- *)

(* The sweep order is a contract shared between the shard dequeue
   sweep and the scheduler's steal ([Wfq_sched]): one full lap from
   the start queue, neighbours first, wrapping once. Pin it exactly. *)
let test_steal_order_pinned () =
  let module SO = Wfq_shard.Steal_order in
  Alcotest.(check (list int)) "n=4 start=0" [ 0; 1; 2; 3 ]
    (SO.order ~n:4 ~start:0);
  Alcotest.(check (list int)) "n=4 start=2" [ 2; 3; 0; 1 ]
    (SO.order ~n:4 ~start:2);
  Alcotest.(check (list int)) "n=1 start=0" [ 0 ] (SO.order ~n:1 ~start:0);
  Alcotest.(check (list int)) "n=5 start=4" [ 4; 0; 1; 2; 3 ]
    (SO.order ~n:5 ~start:4);
  (* Position arithmetic agrees with the list form everywhere. *)
  for n = 1 to 6 do
    for start = 0 to n - 1 do
      Alcotest.(check (list int))
        (Printf.sprintf "visit = order (n=%d start=%d)" n start)
        (SO.order ~n ~start)
        (List.init n (fun i -> SO.visit ~n ~start i));
      (* Every queue visited exactly once: the lap is a permutation. *)
      Alcotest.(check (list int))
        (Printf.sprintf "permutation (n=%d start=%d)" n start)
        (List.init n Fun.id)
        (List.sort compare (SO.order ~n ~start));
      (* [next] is the step the lap takes between positions. *)
      for i = 0 to n - 2 do
        Alcotest.(check int)
          (Printf.sprintf "next chains (n=%d start=%d i=%d)" n start i)
          (SO.visit ~n ~start (i + 1))
          (SO.next ~n (SO.visit ~n ~start i))
      done
    done
  done;
  Alcotest.check_raises "n=0 rejected"
    (Invalid_argument "Steal_order: n must be positive") (fun () ->
      ignore (SO.order ~n:0 ~start:0));
  Alcotest.check_raises "start out of range"
    (Invalid_argument "Steal_order: start") (fun () ->
      ignore (SO.visit ~n:3 ~start:3 0));
  Alcotest.check_raises "position out of range"
    (Invalid_argument "Steal_order: position") (fun () ->
      ignore (SO.visit ~n:3 ~start:0 3))

(* The shard dequeue sweep serves shards in Steal_order: with every
   shard non-empty except the start, the first steal comes from the
   start's ring successor, then its successor, ... — observed through
   the last_dequeue_shard probe with a Tid_affine start pinned to 0. *)
let test_sweep_follows_steal_order () =
  let module SO = Wfq_shard.Steal_order in
  (* A 4-shard front-end with num_threads = 4; tid [s] (Tid_affine)
     fills shard [s]. Dequeues by tid 0 must then drain shard 0 first,
     then 1, 2, 3 — the pinned lap from start 0. *)
  let shards = 4 in
  let t = Sh.create ~policy:P.Tid_affine ~shards ~num_threads:4 () in
  for s = 0 to shards - 1 do
    Sh.enqueue t ~tid:s s
  done;
  List.iter
    (fun expect ->
      match Sh.dequeue t ~tid:0 with
      | None -> Alcotest.fail "sweep reported empty with elements present"
      | Some v ->
          Alcotest.(check int) "sweep order value" expect v;
          Alcotest.(check int) "sweep order shard" expect
            (Sh.last_dequeue_shard t ~tid:0))
    (SO.order ~n:shards ~start:0)

let seq_cases =
  test_create_validation
  |> fun f ->
  Alcotest.test_case "create validation / defaults" `Quick f
  :: Alcotest.test_case "registered backends as shards" `Quick
       test_registered_backends
  :: (List.concat_map
        (fun p ->
          List.map
            (fun shards ->
              Alcotest.test_case
                (Printf.sprintf "model: %s x%d" (snd p) shards)
                `Quick
                (test_sequential_model p shards))
            shard_counts)
        policies
     @ [ Alcotest.test_case "strict mode is a global FIFO" `Quick
           test_strict_global_fifo ])

let sweep_cases =
  List.concat_map
    (fun p ->
      List.map
        (fun shards ->
          Alcotest.test_case
            (Printf.sprintf "singleton found: %s x%d" (snd p) shards)
            `Quick
            (test_singleton_always_found p shards))
        shard_counts)
    policies

let () =
  Alcotest.run "shard"
    [
      ("sequential", seq_cases);
      ( "steal order",
        [
          Alcotest.test_case "lap pinned" `Quick test_steal_order_pinned;
          Alcotest.test_case "sweep follows the lap" `Quick
            test_sweep_follows_steal_order;
        ] );
      ("quiescent sweep", sweep_cases);
      ( "batches",
        [
          Alcotest.test_case "round-robin spread" `Quick
            test_batch_round_robin_spread;
          Alcotest.test_case "contiguous policies" `Quick
            test_batch_contiguous_policies;
          Alcotest.test_case "edge cases" `Quick test_batch_edge_cases;
          Alcotest.test_case "length-aware balances" `Quick
            test_length_aware_balances;
        ] );
      ( "cost profile",
        [
          Alcotest.test_case "batch amortizes tickets" `Quick
            test_ticket_amortization;
          Alcotest.test_case "tid-affine needs no tickets" `Quick
            test_tid_affine_no_tickets;
        ] );
      ("sim systematic", systematic_tests);
      ("sim fuzz", fuzz_tests);
    ]
