(* Tests for the benchmark harness: barrier, workloads (with their
   built-in conservation checks), space measurement and report tables. *)

module B = Wfq_harness.Barrier
module W = Wfq_harness.Workload
module I = Wfq_harness.Impls
module Sp = Wfq_harness.Space
module R = Wfq_harness.Report

let test_barrier_releases_all () =
  let n = 5 in
  let b = B.create n in
  let released = Atomic.make 0 in
  let ds =
    List.init (n - 1) (fun _ ->
        Domain.spawn (fun () ->
            B.wait b;
            Atomic.incr released))
  in
  (* Nobody may pass before the last participant arrives. *)
  Unix.sleepf 0.05;
  Alcotest.(check int) "held until last arrival" 0 (Atomic.get released);
  B.wait b;
  List.iter Domain.join ds;
  Alcotest.(check int) "all released" (n - 1) (Atomic.get released)

let test_pairs_all_impls () =
  List.iter
    (fun impl ->
      let r = W.pairs impl ~threads:3 ~iters:2_000 () in
      Alcotest.(check bool)
        (I.name impl ^ " positive time")
        true (r.W.seconds >= 0.0);
      Alcotest.(check int)
        (I.name impl ^ " op count")
        (2 * 3 * 2_000) r.W.total_ops)
    I.all

let test_p_enq_all_impls () =
  List.iter
    (fun impl ->
      let r = W.p_enq impl ~threads:3 ~iters:2_000 () in
      Alcotest.(check int)
        (I.name impl ^ " op count")
        (3 * 2_000) r.W.total_ops;
      (* coin flips counted *)
      let enqs =
        Array.fold_left (fun a c -> a + c.W.enqs) 0 r.W.per_thread
      in
      let deqs =
        Array.fold_left
          (fun a c -> a + c.W.deq_hits + c.W.deq_empties)
          0 r.W.per_thread
      in
      Alcotest.(check int) "every iteration did one op" (3 * 2_000)
        (enqs + deqs))
    I.all

let test_pairs_check_catches_broken_queue () =
  (* A deliberately broken queue (drops every other enqueue) must be
     rejected by the workload's conservation check. *)
  let broken : I.impl =
    (module struct
      type t = { q : int Wfq_core.Mutex_queue.t; mutable flip : bool }

      let name = "broken"

      let create ~num_threads =
        { q = Wfq_core.Mutex_queue.create ~num_threads (); flip = false }

      let enqueue t ~tid v =
        t.flip <- not t.flip;
        if t.flip then Wfq_core.Mutex_queue.enqueue t.q ~tid v

      let dequeue t ~tid = Wfq_core.Mutex_queue.dequeue t.q ~tid
    end)
  in
  match W.pairs broken ~threads:1 ~iters:100 () with
  | _ -> Alcotest.fail "broken queue passed the conservation check"
  | exception Failure _ -> ()

let test_repeat_runs () =
  let times =
    W.repeat ~runs:3 (fun () -> W.pairs I.mutex ~threads:2 ~iters:500 ())
  in
  Alcotest.(check int) "three samples" 3 (List.length times);
  List.iter
    (fun t -> Alcotest.(check bool) "non-negative" true (t >= 0.0))
    times

let test_seed_determinism () =
  (* Same seed => same per-thread op mix in the random workload. *)
  let mix seed =
    let r = W.p_enq ~seed I.mutex ~threads:2 ~iters:1_000 () in
    Array.to_list (Array.map (fun c -> c.W.enqs) r.W.per_thread)
  in
  Alcotest.(check (list int)) "same seed same mix" (mix 7) (mix 7);
  Alcotest.(check bool) "different seed differs" true (mix 7 <> mix 8)

let test_space_footprint_scales () =
  let f100 = Sp.footprint I.lf ~size:100 in
  let f10k = Sp.footprint I.lf ~size:10_000 in
  Alcotest.(check bool)
    (Printf.sprintf "footprint grows with size (%d -> %d words)" f100 f10k)
    true
    (f10k > 50 * f100 / 10);
  (* WF nodes are larger than LF nodes (two extra fields). *)
  let wf = Sp.footprint I.wf_base ~size:10_000 in
  let lf = Sp.footprint I.lf ~size:10_000 in
  let ratio = float_of_int wf /. float_of_int lf in
  Alcotest.(check bool)
    (Printf.sprintf "WF/LF footprint ratio %.2f in (1.0, 2.5)" ratio)
    true
    (ratio > 1.0 && ratio < 2.5)

let test_footprint_active () =
  (* Active sampling must still see the prefill-dominated footprint and
     stay in the same ballpark as the static measurement. *)
  let static = Sp.footprint I.lf ~size:5_000 in
  let active =
    Sp.footprint_active I.lf ~size:5_000 ~iters:2_000 ~samples:8
  in
  let ratio = float_of_int active /. float_of_int static in
  Alcotest.(check bool)
    (Printf.sprintf "active within 2x of static (%.2f)" ratio)
    true
    (ratio > 0.5 && ratio < 2.0)

let test_figures_shapes () =
  (* Tiny-scale smoke of the figure generators: well-formed series with
     consistent x axes and positive measurements. *)
  let scale =
    { Wfq_harness.Figures.threads = [ 1; 2 ]; iters = 300; runs = 1;
      sizes = [ 1; 100 ] }
  in
  let well_formed series =
    Alcotest.(check bool) "non-empty" true (series <> []);
    let xs (s : R.series) = List.map fst s.points in
    let first = xs (List.hd series) in
    List.iter
      (fun (s : R.series) ->
        Alcotest.(check (list (float 0.0))) "same x axis" first (xs s);
        List.iter
          (fun (_, y) ->
            Alcotest.(check bool) "finite positive" true
              (Float.is_finite y && y >= 0.0))
          s.points)
      series
  in
  well_formed (Wfq_harness.Figures.fig7 ~scale ());
  well_formed (Wfq_harness.Figures.fig8 ~scale ());
  well_formed (Wfq_harness.Figures.fig9 ~scale ());
  well_formed (Wfq_harness.Figures.fig10 ~scale ());
  (* the space ratio must exceed 1: WF nodes are strictly larger *)
  List.iter
    (fun (s : R.series) ->
      List.iter
        (fun (_, y) -> Alcotest.(check bool) "ratio > 1" true (y > 1.0))
        s.points)
    (Wfq_harness.Figures.fig10 ~scale ())

let test_latency_summary () =
  let s = Wfq_harness.Latency.measure ~threads:2 ~iters:500 I.mutex in
  Alcotest.(check int) "samples" 1000 s.Wfq_harness.Latency.samples;
  let open Wfq_harness.Latency in
  let ordered what (d : dist) =
    Alcotest.(check bool)
      (what ^ " percentiles ordered")
      true
      (d.p50 <= d.p99 && d.p99 <= d.p999 && d.p999 <= d.max)
  in
  (* enqueue and dequeue are separate sides now — both must be
     internally ordered and strictly positive at the median (a zero
     would mean a fused or dropped sample) *)
  ordered "enqueue" s.enqueue;
  ordered "dequeue" s.dequeue;
  Alcotest.(check bool) "enqueue median positive" true (s.enqueue.p50 > 0.0);
  Alcotest.(check bool) "dequeue median positive" true (s.dequeue.p50 > 0.0)

let test_by_name () =
  Alcotest.(check string) "lookup" "LF" (I.name (I.by_name "LF"));
  Alcotest.check_raises "unknown rejected"
    (Invalid_argument
       (Printf.sprintf "Impls.by_name: unknown %S (known: %s)" "nope"
          (String.concat ", " (List.map I.name I.all))))
    (fun () -> ignore (I.by_name "nope"))

let test_chart_renders () =
  let series =
    [
      { R.label = "a"; points = [ (1.0, 1.0); (2.0, 2.0); (4.0, 4.0) ] };
      { R.label = "b"; points = [ (1.0, 2.0); (2.0, 4.0); (4.0, 8.0) ] };
    ]
  in
  let out = Wfq_harness.Chart.render ~width:32 ~height:8 series in
  Alcotest.(check bool) "mentions both series" true
    (String.length out > 0
    && String.index_opt out '*' <> None
    && String.index_opt out '+' <> None);
  Alcotest.(check string) "empty data" "(no data)\n"
    (Wfq_harness.Chart.render [])

let test_report_table_renders () =
  (* Smoke: the printer must not raise and must align missing points. *)
  R.print_table ~title:"test" ~x_label:"threads" ~y_label:"sec"
    [
      { R.label = "a"; points = [ (1.0, 0.5); (2.0, 0.7) ] };
      { R.label = "b"; points = [ (1.0, 0.6) ] };
    ];
  R.print_csv ~title:"test"
    [ { R.label = "a"; points = [ (1.0, 0.5) ] } ]

let () =
  Alcotest.run "harness"
    [
      ( "barrier",
        [ Alcotest.test_case "releases all at once" `Quick
            test_barrier_releases_all ] );
      ( "workloads",
        [
          Alcotest.test_case "pairs on every impl" `Quick
            test_pairs_all_impls;
          Alcotest.test_case "p_enq on every impl" `Quick
            test_p_enq_all_impls;
          Alcotest.test_case "conservation check bites" `Quick
            test_pairs_check_catches_broken_queue;
          Alcotest.test_case "repeat collects samples" `Quick
            test_repeat_runs;
          Alcotest.test_case "workload seeds deterministic" `Quick
            test_seed_determinism;
        ] );
      ( "space",
        [
          Alcotest.test_case "footprints scale and compare" `Quick
            test_space_footprint_scales;
          Alcotest.test_case "active sampling agrees" `Quick
            test_footprint_active;
        ] );
      ( "report",
        [
          Alcotest.test_case "tables render" `Quick
            test_report_table_renders;
          Alcotest.test_case "charts render" `Quick test_chart_renders;
        ] );
      ( "figures",
        [
          Alcotest.test_case "series well-formed" `Slow test_figures_shapes;
          Alcotest.test_case "latency summary" `Quick test_latency_summary;
          Alcotest.test_case "by_name lookup" `Quick test_by_name;
        ] );
    ]
