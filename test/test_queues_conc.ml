(* Concurrency tests on real OCaml domains.

   One physical core means domains interleave by OS/runtime preemption
   rather than true parallelism, but safe-points inside allocation make
   the interleavings plentiful. Each test checks whole-run invariants
   that any linearizable FIFO must satisfy:

   - conservation: every value enqueued is dequeued exactly once (or
     still present at the end);
   - per-producer order: values from one producer are consumed in the
     order that producer pushed them (FIFO implies it);
   - the pairs workload never observes an empty queue. *)

module A = Wfq_primitives.Real_atomic
module Ms = Wfq_core.Ms_queue.Make (A)
module Kp = Wfq_core.Kp_queue.Make (A)
module Kp_hp = Wfq_core.Kp_queue_hp.Make (A)
module Fps = Wfq_core.Kp_queue_fps.Make (A)
module Lms = Wfq_core.Lms_queue.Make (A)
module Ring = Wfq_core.Ring_queue.Make (A)

type 'q conc_queue = {
  make : num_threads:int -> 'q;
  enq : 'q -> tid:int -> int -> unit;
  deq : 'q -> tid:int -> int option;
  len : 'q -> int;
}

type packed = Q : string * 'q conc_queue -> packed

let queues =
  [
    Q
      ( "ms",
        {
          make = (fun ~num_threads -> Ms.create ~num_threads ());
          enq = (fun q ~tid v -> Ms.enqueue q ~tid v);
          deq = (fun q ~tid -> Ms.dequeue q ~tid);
          len = Ms.length;
        } );
    Q
      ( "kp-base",
        {
          make =
            (fun ~num_threads ->
              Kp.create_with ~help:Wfq_core.Kp_queue.Help_all
                ~phase:Wfq_core.Kp_queue.Phase_scan ~num_threads ());
          enq = (fun q ~tid v -> Kp.enqueue q ~tid v);
          deq = (fun q ~tid -> Kp.dequeue q ~tid);
          len = Kp.length;
        } );
    Q
      ( "kp-hp (tiny pool)",
        {
          make =
            (fun ~num_threads ->
              Kp_hp.create ~scan_threshold:8 ~pool_capacity:32 ~num_threads
                ());
          enq = (fun q ~tid v -> Kp_hp.enqueue q ~tid v);
          deq = (fun q ~tid -> Kp_hp.dequeue q ~tid);
          len = Kp_hp.length;
        } );
    (* Fast-path/slow-path variant at the adversarial budget: mf=1
       keeps falling back under contention (both paths and their
       interaction run constantly). The mostly-fast default budget is
       exercised by the registry-driven rows below. *)
    Q
      ( "kp-fps mf=1",
        {
          make =
            (fun ~num_threads ->
              Fps.create_with ~max_failures:1
                ~help:Wfq_core.Kp_queue_fps.Help_one_cyclic
                ~phase:Wfq_core.Kp_queue_fps.Phase_counter ~num_threads ());
          enq = (fun q ~tid v -> Fps.enqueue q ~tid v);
          deq = (fun q ~tid -> Fps.dequeue q ~tid);
          len = Fps.length;
        } );
    (* Bounded ring at the same adversarial budget, capacity sized
       above every workload's peak occupancy (burst-then-drain holds
       8_000 live elements) so [enqueue] never meets a full ring and
       the unbounded-FIFO invariants apply unchanged. *)
    Q
      ( "ring mf=1",
        {
          make =
            (fun ~num_threads ->
              Ring.create_with ~capacity:16_384 ~max_failures:1 ~num_threads
                ());
          enq = (fun q ~tid v -> Ring.enqueue q ~tid v);
          deq = (fun q ~tid -> Ring.dequeue q ~tid);
          len = Ring.length;
        } );
    Q
      ( "lms",
        {
          make = (fun ~num_threads -> Lms.create ~num_threads ());
          enq = (fun q ~tid v -> Lms.enqueue q ~tid v);
          deq = (fun q ~tid -> Lms.dequeue q ~tid);
          len = Lms.length;
        } );
    Q
      ( "two-lock",
        {
          make =
            (fun ~num_threads ->
              Wfq_core.Two_lock_queue.create ~num_threads ());
          enq = (fun q ~tid v -> Wfq_core.Two_lock_queue.enqueue q ~tid v);
          deq = (fun q ~tid -> Wfq_core.Two_lock_queue.dequeue q ~tid);
          len = Wfq_core.Two_lock_queue.length;
        } );
  ]

(* Encode producer and sequence into one int so consumers can check
   per-producer order: value = producer * 1_000_000 + seq. *)
let encode ~producer ~seq = (producer * 1_000_000) + seq
let producer_of v = v / 1_000_000
let seq_of v = v mod 1_000_000

let test_producers_consumers (Q (name, ops)) ~producers ~consumers ~per_producer
    () =
  let num_threads = producers + consumers in
  let q = ops.make ~num_threads in
  let total = producers * per_producer in
  let consumed = Atomic.make 0 in
  (* Per-consumer logs, inspected after the run. *)
  let logs = Array.make consumers [] in
  let producer p () =
    for seq = 1 to per_producer do
      ops.enq q ~tid:p (encode ~producer:p ~seq)
    done
  in
  let consumer c () =
    let tid = producers + c in
    let got = ref [] in
    let n = ref 0 in
    while Atomic.get consumed < total do
      match ops.deq q ~tid with
      | Some v ->
          got := v :: !got;
          incr n;
          Atomic.incr consumed
      | None -> Domain.cpu_relax ()
    done;
    logs.(c) <- List.rev !got
  in
  let domains =
    List.init producers (fun p -> Domain.spawn (producer p))
    @ List.init consumers (fun c -> Domain.spawn (consumer c))
  in
  List.iter Domain.join domains;
  (* Conservation: each value seen exactly once, all values seen. *)
  let seen = Hashtbl.create total in
  Array.iter
    (fun log ->
      List.iter
        (fun v ->
          if Hashtbl.mem seen v then
            Alcotest.fail (Printf.sprintf "%s: value %d seen twice" name v);
          Hashtbl.add seen v ())
        log)
    logs;
  Alcotest.(check int) "every value consumed exactly once" total
    (Hashtbl.length seen);
  Alcotest.(check int) "queue empty" 0 (ops.len q);
  (* Per-producer order within each consumer's log: FIFO implies that the
     subsequence of values from one producer is increasing. *)
  Array.iter
    (fun log ->
      let last_seq = Array.make producers 0 in
      List.iter
        (fun v ->
          let p = producer_of v and s = seq_of v in
          if s <= last_seq.(p) then
            Alcotest.fail
              (Printf.sprintf
                 "%s: per-producer order violated (p%d: %d after %d)" name p
                 s last_seq.(p));
          last_seq.(p) <- s)
        log)
    logs

let test_pairs_never_empty (Q (name, ops)) ~threads ~iters () =
  let q = ops.make ~num_threads:threads in
  let empties = Atomic.make 0 in
  let domains =
    List.init threads (fun tid ->
        Domain.spawn (fun () ->
            for i = 1 to iters do
              ops.enq q ~tid (encode ~producer:tid ~seq:i);
              match ops.deq q ~tid with
              | Some _ -> ()
              | None -> Atomic.incr empties
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int)
    (name ^ ": no dequeue may observe empty in pairs")
    0 (Atomic.get empties);
  Alcotest.(check int) "balanced" 0 (ops.len q)

let test_all_enqueue_then_drain ?(per = 2_000) (Q (name, ops)) () =
  (* Phase 1: everyone enqueues concurrently. Phase 2: sequential drain
     must deliver exactly the enqueued multiset, per-producer ordered. *)
  let threads = 4 in
  let q = ops.make ~num_threads:threads in
  let domains =
    List.init threads (fun tid ->
        Domain.spawn (fun () ->
            for seq = 1 to per do
              ops.enq q ~tid (encode ~producer:tid ~seq)
            done))
  in
  List.iter Domain.join domains;
  let last_seq = Array.make threads 0 in
  let count = ref 0 in
  let rec drain () =
    match ops.deq q ~tid:0 with
    | None -> ()
    | Some v ->
        incr count;
        let p = producer_of v and s = seq_of v in
        if s <> last_seq.(p) + 1 then
          Alcotest.fail
            (Printf.sprintf "%s: producer %d out of order: %d after %d" name
               p s last_seq.(p));
        last_seq.(p) <- s;
        drain ()
  in
  drain ();
  Alcotest.(check int) "all present" (threads * per) !count

let row_cases ?cap (Q (name, _) as q) =
  (* [cap] is the backend's capacity bound when it has one: workload
     sizes are clamped so peak occupancy never reaches it and the
     unbounded-FIFO invariants apply unchanged. *)
  let live = match cap with None -> max_int | Some c -> c in
  [
    Alcotest.test_case (name ^ " 2p/2c") `Quick
      (test_producers_consumers q ~producers:2 ~consumers:2
         ~per_producer:(min 3_000 (live / 2)));
    Alcotest.test_case (name ^ " 4p/1c") `Quick
      (test_producers_consumers q ~producers:4 ~consumers:1
         ~per_producer:(min 2_000 (live / 4)));
    Alcotest.test_case (name ^ " 1p/4c") `Quick
      (test_producers_consumers q ~producers:1 ~consumers:4
         ~per_producer:(min 6_000 live));
    Alcotest.test_case (name ^ " pairs x4") `Quick
      (test_pairs_never_empty q ~threads:4 ~iters:3_000);
    Alcotest.test_case (name ^ " enqueue burst then drain") `Quick
      (test_all_enqueue_then_drain ~per:(min 2_000 (live / 4)) q);
  ]

let cases = List.concat_map row_cases queues

(* Registry-driven rows: every backend registered in Wfq_core.Backends
   runs the same five workloads through its uniform instance — the
   QUEUE_BACKEND contract replaces the per-backend plumbing the rows
   above used to hand-maintain for the wait-free backends. A new
   backend joins this battery by registering; nothing here names one. *)
module Bks = Wfq_core.Backends
module Qi = Wfq_core.Queue_intf

let registry_cases =
  List.concat_map
    (fun (module Bk : Qi.BACKEND) ->
      let row =
        Q
          ( Bk.id ^ " (registry)",
            {
              make =
                (fun ~num_threads -> Bks.instantiate (module Bk) ~num_threads ());
              enq = (fun i ~tid v -> i.Qi.enq ~tid v);
              deq = (fun i ~tid -> i.Qi.deq ~tid);
              len = (fun i -> i.Qi.size ());
            } )
      in
      row_cases ?cap:Bk.capacity row)
    (Bks.all ())

(* Sim-based linearizability rows for the hazard-pointer variant: the
   recycling protocol mutates node fields, so a protocol race corrupts
   history observably — exactly what the Explore × Lincheck driver
   checks on every explored schedule. DPOR covers the one-op-per-fiber
   scenario exhaustively; the two-op scenarios use bounded-preemption
   and fuzz modes (their full trace spaces are beyond any budget). Every
   row also runs the wait-freedom certifier (per-fiber step bound). *)
module SA = Wfq_sim.Sim_atomic
module Ck = Wfq_sim.Check
module Hp_sim = Wfq_core.Kp_queue_hp.Make (SA)

let hp_sim_ops : _ Ck.ops =
  {
    Ck.create =
      (fun ~num_threads ->
        (* Tiny pool and eager scans: maximum recycling pressure. *)
        Hp_sim.create ~scan_threshold:1 ~pool_capacity:64 ~num_threads ());
    enqueue = (fun q ~tid v -> Hp_sim.enqueue q ~tid v);
    dequeue = (fun q ~tid -> Hp_sim.dequeue q ~tid);
    contents = Hp_sim.to_list;
  }

let check_hp_clean name (r : Ck.report) =
  (match r.Ck.failure with
  | None -> ()
  | Some f ->
      Alcotest.failf "%s: %a" name Ck.pp_failure f);
  Alcotest.(check bool) (name ^ ": exhausted") true r.Ck.exhausted

let test_hp_sim_enq_deq_dpor () =
  check_hp_clean "kp-hp enq|deq under dpor"
    (Ck.run ~mode:Ck.Dpor ~max_schedules:50_000 ~step_bound:100
       ~queue:hp_sim_ops
       ~scripts:[ [ `Enq 1 ]; [ `Deq ] ]
       ())

let test_hp_sim_deq_race_pb () =
  check_hp_clean "kp-hp deq|deq under <=2 preemptions"
    (Ck.run ~mode:(Ck.Preemption_bounded 2) ~max_schedules:100_000
       ~step_bound:160 ~init:[ 1; 2 ] ~queue:hp_sim_ops
       ~scripts:[ [ `Deq ]; [ `Deq ] ]
       ())

let test_hp_sim_pairs_pb () =
  check_hp_clean "kp-hp pairs under <=2 preemptions"
    (Ck.run ~mode:(Ck.Preemption_bounded 2) ~max_schedules:100_000
       ~step_bound:200 ~queue:hp_sim_ops
       ~scripts:[ [ `Enq 1; `Deq ]; [ `Enq 2; `Deq ] ]
       ())

let test_hp_sim_pairs_fuzz () =
  let r =
    Ck.run
      ~mode:(Ck.Fuzz { seed0 = 17; count = 2_000 })
      ~step_bound:200 ~queue:hp_sim_ops
      ~scripts:[ [ `Enq 1; `Deq ]; [ `Enq 2; `Deq ] ]
      ()
  in
  match r.Ck.failure with
  | None -> ()
  | Some f -> Alcotest.failf "kp-hp fuzz: %a" Ck.pp_failure f

let hp_sim_cases =
  [
    Alcotest.test_case "kp-hp enq|deq: dpor-exhaustive lincheck" `Quick
      test_hp_sim_enq_deq_dpor;
    Alcotest.test_case "kp-hp deq|deq: bounded-preemption lincheck" `Quick
      test_hp_sim_deq_race_pb;
    Alcotest.test_case "kp-hp pairs: bounded-preemption lincheck" `Quick
      test_hp_sim_pairs_pb;
    Alcotest.test_case "kp-hp pairs: fuzz lincheck" `Quick
      test_hp_sim_pairs_fuzz;
  ]

(* Sim-based linearizability rows for the bounded ring, against the
   bounded-FIFO spec: [`Try_enq] results are judged with [~capacity]
   (Rejected is legal exactly when the abstract queue is full). The
   tiny configurations (capacity 1-2, max_failures 0-1) keep every
   protocol layer — claim/rollback, helping hand-off, full/empty
   validation — inside DPOR-exhaustible trace spaces; the two-op rows
   use bounded-preemption and fuzz, as for kp-hp above. Every row runs
   the wait-freedom certifier and the quiescent structural audit. *)
module Ring_sim = Wfq_core.Ring_queue.Make (SA)

let ring_sim_ops ~capacity ~max_failures : _ Ck.ops =
  {
    Ck.create =
      (fun ~num_threads ->
        Ring_sim.create_with ~capacity ~max_failures ~num_threads ());
    enqueue = (fun q ~tid v -> Ring_sim.enqueue q ~tid v);
    dequeue = (fun q ~tid -> Ring_sim.dequeue q ~tid);
    contents = Ring_sim.to_list;
  }

let ring_try_enq q ~tid v = Ring_sim.try_enqueue q ~tid v
let ring_audit q = Ring_sim.check_quiescent_invariants q

let check_ring_clean name (r : Ck.report) =
  (match r.Ck.failure with
  | None -> ()
  | Some f -> Alcotest.failf "%s: %a" name Ck.pp_failure f);
  Alcotest.(check bool) (name ^ ": exhausted") true r.Ck.exhausted

let test_ring_sim_enq_deq_dpor () =
  check_ring_clean "ring enq|deq under dpor"
    (Ck.run ~mode:Ck.Dpor ~max_schedules:100_000 ~step_bound:120
       ~try_enqueue:ring_try_enq ~capacity:2 ~extra_check:ring_audit
       ~queue:(ring_sim_ops ~capacity:2 ~max_failures:1)
       ~scripts:[ [ `Enq 1 ]; [ `Deq ] ]
       ())

let test_ring_sim_full_race_dpor () =
  (* Capacity-1 ring pre-filled to the brim: Try_enq must linearize to
     Rejected or Done depending on whether the racing Deq's removal has
     happened — the bounded spec's hardest corner. All-slow-path. *)
  check_ring_clean "ring try_enq|deq on full capacity-1 ring under dpor"
    (Ck.run ~mode:Ck.Dpor ~max_schedules:300_000 ~step_bound:120
       ~init:[ 9 ] ~try_enqueue:ring_try_enq ~capacity:1
       ~extra_check:ring_audit
       ~queue:(ring_sim_ops ~capacity:1 ~max_failures:0)
       ~scripts:[ [ `Try_enq 1 ]; [ `Deq ] ]
       ())

let test_ring_sim_pairs_pb () =
  check_ring_clean "ring pairs under <=2 preemptions"
    (Ck.run ~mode:(Ck.Preemption_bounded 2) ~max_schedules:100_000
       ~step_bound:200 ~try_enqueue:ring_try_enq ~capacity:2
       ~extra_check:ring_audit
       ~queue:(ring_sim_ops ~capacity:2 ~max_failures:1)
       ~scripts:[ [ `Enq 1; `Deq ]; [ `Enq 2; `Deq ] ]
       ())

let test_ring_sim_pairs_fuzz () =
  let r =
    Ck.run
      ~mode:(Ck.Fuzz { seed0 = 23; count = 2_000 })
      ~step_bound:200 ~try_enqueue:ring_try_enq ~capacity:2
      ~extra_check:ring_audit
      ~queue:(ring_sim_ops ~capacity:2 ~max_failures:1)
      ~scripts:[ [ `Enq 1; `Deq ]; [ `Enq 2; `Deq ] ]
      ()
  in
  match r.Ck.failure with
  | None -> ()
  | Some f -> Alcotest.failf "ring fuzz: %a" Ck.pp_failure f

let ring_sim_cases =
  [
    Alcotest.test_case "ring enq|deq: dpor-exhaustive lincheck" `Quick
      test_ring_sim_enq_deq_dpor;
    Alcotest.test_case "ring full-race: dpor-exhaustive bounded lincheck"
      `Quick test_ring_sim_full_race_dpor;
    Alcotest.test_case "ring pairs: bounded-preemption lincheck" `Quick
      test_ring_sim_pairs_pb;
    Alcotest.test_case "ring pairs: fuzz lincheck" `Quick
      test_ring_sim_pairs_fuzz;
  ]

(* ------------------------------------------------------------------ *)
(* Cross-backend differential batch fuzzer                             *)
(* ------------------------------------------------------------------ *)

(* Random mixed single/batch scripts replayed against the sequential
   FIFO model on every batch-capable backend — KP, FPS, ring, shard —
   under both the deterministic simulator (random schedules, every one
   judged by the linearizability checker) and real 4-domain runs (the
   thread-safe history recorder, then the same checker; multi-shard
   front-ends are judged on conservation, their global order being
   deliberately relaxed). Scripts are generated from a seed, so any
   failure replays. *)

module H = Wfq_lincheck.History
module C = Wfq_lincheck.Checker
module Kp_sim = Wfq_core.Kp_queue.Make (SA)
module Fps_sim = Wfq_core.Kp_queue_fps.Make (SA)
module Shard_real = Wfq_shard.Shard.Make (A)
module Shard_sim = Wfq_shard.Shard.Make (SA)

(* Deterministic LCG so every generated script replays by seed. *)
let mk_rng seed =
  let s = ref ((seed * 2) + 1) in
  fun bound ->
    s := ((!s * 2685821657736338717) + 1442695040888963407) land max_int;
    (!s lsr 17) mod bound

(* [threads] scripts of [ops] operations each, batches of at most
   [max_batch] elements, enqueued values globally unique so duplicate
   delivery and loss are attributable. Expanded sub-op count is at most
   [threads * ops * max_batch] — callers keep that under the checker's
   62-op limit. *)
let gen_scripts rng ~threads ~ops ~max_batch : Ck.script list =
  let v = ref 0 in
  let fresh () =
    incr v;
    !v
  in
  List.init threads (fun _ ->
      List.init ops (fun _ ->
          match rng 6 with
          | 0 | 1 ->
              `Enq_batch (List.init (1 + rng max_batch) (fun _ -> fresh ()))
          | 2 -> `Deq_batch (1 + rng max_batch)
          | 3 -> `Deq
          | _ -> `Enq (fresh ())))

(* --- simulator plane: random schedules, lincheck on every one ------ *)

type sim_diff_row = {
  sd_name : string;
  sd_run : seed:int -> Ck.script list -> Ck.report;
}

let sim_diff_rows =
  let fuzz ~seed = Ck.Fuzz { seed0 = seed * 7919; count = 40 } in
  [
    {
      sd_name = "kp-opt12";
      sd_run =
        (fun ~seed scripts ->
          Ck.run ~mode:(fuzz ~seed)
            ~queue:
              {
                Ck.create =
                  (fun ~num_threads ->
                    Kp_sim.create_with ~help:Wfq_core.Kp_queue.Help_one_cyclic
                      ~phase:Wfq_core.Kp_queue.Phase_counter ~num_threads ());
                enqueue = (fun q ~tid v -> Kp_sim.enqueue q ~tid v);
                dequeue = (fun q ~tid -> Kp_sim.dequeue q ~tid);
                contents = Kp_sim.to_list;
              }
            ~enqueue_batch:(fun q ~tid vs -> Kp_sim.enqueue_batch q ~tid vs)
            ~dequeue_batch:(fun q ~tid ~n -> Kp_sim.dequeue_batch q ~tid ~n)
            ~scripts ());
    };
    {
      sd_name = "kp-fps mf=1";
      sd_run =
        (fun ~seed scripts ->
          Ck.run ~mode:(fuzz ~seed)
            ~queue:
              {
                Ck.create =
                  (fun ~num_threads ->
                    Fps_sim.create_with ~max_failures:1
                      ~help:Wfq_core.Kp_queue_fps.Help_one_cyclic
                      ~phase:Wfq_core.Kp_queue_fps.Phase_counter ~num_threads
                      ());
                enqueue = (fun q ~tid v -> Fps_sim.enqueue q ~tid v);
                dequeue = (fun q ~tid -> Fps_sim.dequeue q ~tid);
                contents = Fps_sim.to_list;
              }
            ~enqueue_batch:(fun q ~tid vs -> Fps_sim.enqueue_batch q ~tid vs)
            ~dequeue_batch:(fun q ~tid ~n -> Fps_sim.dequeue_batch q ~tid ~n)
            ~scripts ());
    };
    {
      (* Capacity far above the script's enqueue count, so the
         unbounded FIFO spec applies unchanged. *)
      sd_name = "ring mf=1";
      sd_run =
        (fun ~seed scripts ->
          Ck.run ~mode:(fuzz ~seed)
            ~queue:(ring_sim_ops ~capacity:64 ~max_failures:1)
            ~enqueue_batch:(fun q ~tid vs -> Ring_sim.enqueue_batch q ~tid vs)
            ~dequeue_batch:(fun q ~tid ~n -> Ring_sim.dequeue_batch q ~tid ~n)
            ~extra_check:ring_audit ~scripts ());
    };
    {
      sd_name = "shard strict";
      sd_run =
        (fun ~seed scripts ->
          Ck.run ~mode:(fuzz ~seed)
            ~queue:
              {
                Ck.create =
                  (fun ~num_threads ->
                    Shard_sim.create_strict ~num_threads ());
                enqueue = (fun q ~tid v -> Shard_sim.enqueue q ~tid v);
                dequeue = (fun q ~tid -> Shard_sim.dequeue q ~tid);
                contents = Shard_sim.to_list;
              }
            ~enqueue_batch:(fun q ~tid vs -> Shard_sim.enqueue_batch q ~tid vs)
            ~dequeue_batch:(fun q ~tid ~n ->
              Shard_sim.dequeue_batch q ~tid ~n)
            ~scripts ());
    };
  ]

let test_diff_fuzz_sim () =
  List.iter
    (fun row ->
      for seed = 1 to 6 do
        let rng = mk_rng seed in
        let scripts = gen_scripts rng ~threads:3 ~ops:4 ~max_batch:3 in
        let r = row.sd_run ~seed scripts in
        match r.Ck.failure with
        | None -> ()
        | Some f ->
            Alcotest.failf "%s seed %d: %a" row.sd_name seed Ck.pp_failure f
      done)
    sim_diff_rows

(* --- real domains: thread-safe recording, same checker ------------- *)

type 'q diff_queue = {
  dmake : num_threads:int -> 'q;
  denq : 'q -> tid:int -> int -> unit;
  ddeq : 'q -> tid:int -> int option;
  denqb : 'q -> tid:int -> int list -> unit;
  ddeqb : 'q -> tid:int -> n:int -> int list;
  dcontents : 'q -> int list;
  dfifo : bool;
      (* strict global FIFO: judge with the linearizability checker;
         multi-shard front-ends are k-relaxed, so conservation only *)
}

type dpacked = D : string * 'q diff_queue -> dpacked

let diff_queues =
  [
    D
      ( "kp-opt12",
        {
          dmake =
            (fun ~num_threads ->
              Kp.create_with ~help:Wfq_core.Kp_queue.Help_one_cyclic
                ~phase:Wfq_core.Kp_queue.Phase_counter ~num_threads ());
          denq = (fun q ~tid v -> Kp.enqueue q ~tid v);
          ddeq = (fun q ~tid -> Kp.dequeue q ~tid);
          denqb = (fun q ~tid vs -> Kp.enqueue_batch q ~tid vs);
          ddeqb = (fun q ~tid ~n -> Kp.dequeue_batch q ~tid ~n);
          dcontents = Kp.to_list;
          dfifo = true;
        } );
    D
      ( "kp-fps mf=1",
        {
          dmake =
            (fun ~num_threads ->
              Fps.create_with ~max_failures:1
                ~help:Wfq_core.Kp_queue_fps.Help_one_cyclic
                ~phase:Wfq_core.Kp_queue_fps.Phase_counter ~num_threads ());
          denq = (fun q ~tid v -> Fps.enqueue q ~tid v);
          ddeq = (fun q ~tid -> Fps.dequeue q ~tid);
          denqb = (fun q ~tid vs -> Fps.enqueue_batch q ~tid vs);
          ddeqb = (fun q ~tid ~n -> Fps.dequeue_batch q ~tid ~n);
          dcontents = Fps.to_list;
          dfifo = true;
        } );
    D
      ( "ring mf=1",
        {
          dmake =
            (fun ~num_threads ->
              Ring.create_with ~capacity:256 ~max_failures:1 ~num_threads ());
          denq = (fun q ~tid v -> Ring.enqueue q ~tid v);
          ddeq = (fun q ~tid -> Ring.dequeue q ~tid);
          denqb = (fun q ~tid vs -> Ring.enqueue_batch q ~tid vs);
          ddeqb = (fun q ~tid ~n -> Ring.dequeue_batch q ~tid ~n);
          dcontents = Ring.to_list;
          dfifo = true;
        } );
    D
      ( "shard strict",
        {
          dmake = (fun ~num_threads -> Shard_real.create_strict ~num_threads ());
          denq = (fun q ~tid v -> Shard_real.enqueue q ~tid v);
          ddeq = (fun q ~tid -> Shard_real.dequeue q ~tid);
          denqb = (fun q ~tid vs -> Shard_real.enqueue_batch q ~tid vs);
          ddeqb = (fun q ~tid ~n -> Shard_real.dequeue_batch q ~tid ~n);
          dcontents = Shard_real.to_list;
          dfifo = true;
        } );
    D
      ( "shard tid-affine x4",
        {
          dmake =
            (fun ~num_threads ->
              Shard_real.create ~policy:Wfq_shard.Shard.Tid_affine ~shards:4
                ~num_threads ());
          denq = (fun q ~tid v -> Shard_real.enqueue q ~tid v);
          ddeq = (fun q ~tid -> Shard_real.dequeue q ~tid);
          denqb = (fun q ~tid vs -> Shard_real.enqueue_batch q ~tid vs);
          ddeqb = (fun q ~tid ~n -> Shard_real.dequeue_batch q ~tid ~n);
          dcontents = Shard_real.to_list;
          dfifo = false;
        } );
  ]

let run_diff_domains (D (name, b)) seed =
  let threads = 4 in
  let rng = mk_rng seed in
  let scripts = gen_scripts rng ~threads ~ops:3 ~max_batch:3 in
  let q = b.dmake ~num_threads:threads in
  let h = H.create ~thread_safe:true () in
  let worker tid script () =
    List.iter
      (function
        | `Enq v ->
            H.call h ~thread:tid (H.Enq v);
            b.denq q ~tid v;
            H.return h ~thread:tid H.Done
        | `Deq -> (
            H.call h ~thread:tid H.Deq;
            match b.ddeq q ~tid with
            | Some v -> H.return h ~thread:tid (H.Got v)
            | None -> H.return h ~thread:tid H.Empty)
        | `Enq_batch vs ->
            H.call_batch h ~thread:tid (List.map (fun v -> H.Enq v) vs);
            b.denqb q ~tid vs;
            H.return_batch h ~thread:tid (List.map (fun _ -> H.Done) vs)
        | `Deq_batch want ->
            H.call_batch h ~thread:tid (List.init want (fun _ -> H.Deq));
            let got = b.ddeqb q ~tid ~n:want in
            let rec responses got i =
              if i = want then []
              else
                match got with
                | v :: tl -> H.Got v :: responses tl (i + 1)
                | [] -> H.Empty :: responses [] (i + 1)
            in
            H.return_batch h ~thread:tid (responses got 0)
        | `Try_enq _ | `Try_enq_batch _ -> assert false)
      script
  in
  let domains = List.mapi (fun tid s -> Domain.spawn (worker tid s)) scripts in
  List.iter Domain.join domains;
  let completed = H.completed h in
  (* Differential vs the sequential model, part 1 — conservation: the
     multiset of accepted enqueues equals dequeued plus what is left. *)
  let enqueued =
    List.filter_map
      (fun (c : H.completed) ->
        match (c.H.op, c.H.response) with
        | H.Enq v, H.Done -> Some v
        | _ -> None)
      completed
  in
  let dequeued =
    List.filter_map
      (fun (c : H.completed) ->
        match c.H.response with H.Got v -> Some v | _ -> None)
      completed
  in
  let left = b.dcontents q in
  let sort = List.sort compare in
  if sort enqueued <> sort (dequeued @ left) then
    Alcotest.failf "%s seed %d: conservation violated (%d enq, %d deq, %d left)"
      name seed (List.length enqueued) (List.length dequeued)
      (List.length left);
  (* Part 2 — for strict-FIFO backends, the recorded history must be a
     linearization of the sequential queue model. *)
  if b.dfifo && not (C.is_linearizable completed) then
    Alcotest.failf "%s seed %d: not linearizable:@.%a" name seed C.pp_history
      completed

let test_diff_fuzz_domains (D (dname, _) as d) () =
  for seed = 1 to 5 do
    run_diff_domains d seed
  done;
  ignore dname

let diff_cases =
  Alcotest.test_case "sim: random schedules x lincheck" `Quick
    test_diff_fuzz_sim
  :: List.map
       (fun (D (name, _) as d) ->
         Alcotest.test_case
           (name ^ " 4 domains x 5 seeds")
           `Quick (test_diff_fuzz_domains d))
       diff_queues

(* SPSC gets its own shape: exactly one producer and one consumer. *)
let test_spsc_stream () =
  let module Spsc = Wfq_core.Spsc_queue.Make (A) in
  let q = Spsc.create ~capacity:64 ~num_threads:2 () in
  let n = 50_000 in
  let producer =
    Domain.spawn (fun () ->
        for i = 1 to n do
          while not (Spsc.try_enqueue q i) do
            Domain.cpu_relax ()
          done
        done)
  in
  let consumer =
    Domain.spawn (fun () ->
        let expected = ref 1 in
        while !expected <= n do
          match Spsc.dequeue q ~tid:1 with
          | Some v ->
              if v <> !expected then
                Alcotest.fail
                  (Printf.sprintf "spsc order: got %d wanted %d" v !expected);
              incr expected
          | None -> Domain.cpu_relax ()
        done)
  in
  Domain.join producer;
  Domain.join consumer;
  Alcotest.(check bool) "drained" true (Spsc.is_empty q)

let () =
  Alcotest.run "queues-concurrent"
    [
      ("domains", cases);
      ("domains (registry)", registry_cases);
      ("sim-lincheck (kp-hp)", hp_sim_cases);
      ("sim-lincheck (ring)", ring_sim_cases);
      ("differential batch fuzzer", diff_cases);
      ( "spsc",
        [ Alcotest.test_case "ordered stream of 50k" `Quick test_spsc_stream ]
      );
    ]
