(* Batch-native enqueue/dequeue across the stack:

   1. Sequential batch contract, uniform over every batch-capable
      backend (KP, FPS, ring, strict shard): FIFO within and across
      batches, empty-batch no-ops, short returns on over-ask, the
      negative-want guard.
   2. Ring-specific bounded behaviour: partial acceptance on full,
      [Ring_full] with the accepted prefix kept, batches crossing the
      wraparound.
   3. The shard front-end's batch cost contract, pinned through the
      white-box call-count probes: [dequeue_batch] performs at most [N]
      backend batch dequeues in one steal lap (the bound that replaced
      the per-element [(n+1)*N] sweep), spread enqueues split a batch
      into exactly [N] contiguous backend batches, keep-together
      policies use exactly one.
   4. Scheduler fan-out: [spawn_many]/[submit_batch] push the whole
      task list through one backend-native run-queue batch, promises
      returned in body order.
   5. Four-domain stress on every backend: concurrent mixed single and
      batch producers/consumers, checking conservation (exactly-once)
      and per-producer order. *)

module A = Wfq_primitives.Real_atomic
module Kp = Wfq_core.Kp_queue.Make (A)
module Fps = Wfq_core.Kp_queue_fps.Make (A)
module Ring = Wfq_core.Ring_queue.Make (A)
module Shard = Wfq_shard.Shard.Make (A)
module Sched = Wfq_sched.Sched
module Fps_sched = Sched.Make (A) (Sched.Rq_fps_pooled (A))

(* ------------------------------------------------------------------ *)
(* Uniform sequential contract                                         *)
(* ------------------------------------------------------------------ *)

type 'q batch_queue = {
  make : num_threads:int -> 'q;
  enq : 'q -> tid:int -> int -> unit;
  deq : 'q -> tid:int -> int option;
  enq_batch : 'q -> tid:int -> int list -> unit;
  deq_batch : 'q -> tid:int -> n:int -> int list;
  len : 'q -> int;
}

type packed = Q : string * 'q batch_queue -> packed

let backends =
  [
    Q
      ( "kp-opt12",
        {
          make =
            (fun ~num_threads ->
              Kp.create_with ~help:Wfq_core.Kp_queue.Help_one_cyclic
                ~phase:Wfq_core.Kp_queue.Phase_counter ~num_threads ());
          enq = (fun q ~tid v -> Kp.enqueue q ~tid v);
          deq = (fun q ~tid -> Kp.dequeue q ~tid);
          enq_batch = (fun q ~tid vs -> Kp.enqueue_batch q ~tid vs);
          deq_batch = (fun q ~tid ~n -> Kp.dequeue_batch q ~tid ~n);
          len = Kp.length;
        } );
    Q
      ( "kp-fps mf=1",
        {
          make =
            (fun ~num_threads ->
              Fps.create_with ~max_failures:1
                ~help:Wfq_core.Kp_queue_fps.Help_one_cyclic
                ~phase:Wfq_core.Kp_queue_fps.Phase_counter ~num_threads ());
          enq = (fun q ~tid v -> Fps.enqueue q ~tid v);
          deq = (fun q ~tid -> Fps.dequeue q ~tid);
          enq_batch = (fun q ~tid vs -> Fps.enqueue_batch q ~tid vs);
          deq_batch = (fun q ~tid ~n -> Fps.dequeue_batch q ~tid ~n);
          len = Fps.length;
        } );
    Q
      ( "kp-fps mf=64",
        {
          make =
            (fun ~num_threads ->
              Fps.create_with ~max_failures:64
                ~help:Wfq_core.Kp_queue_fps.Help_one_cyclic
                ~phase:Wfq_core.Kp_queue_fps.Phase_counter ~num_threads ());
          enq = (fun q ~tid v -> Fps.enqueue q ~tid v);
          deq = (fun q ~tid -> Fps.dequeue q ~tid);
          enq_batch = (fun q ~tid vs -> Fps.enqueue_batch q ~tid vs);
          deq_batch = (fun q ~tid ~n -> Fps.dequeue_batch q ~tid ~n);
          len = Fps.length;
        } );
    Q
      ( "ring mf=1",
        {
          make =
            (fun ~num_threads ->
              Ring.create_with ~capacity:4096 ~max_failures:1 ~num_threads
                ());
          enq = (fun q ~tid v -> Ring.enqueue q ~tid v);
          deq = (fun q ~tid -> Ring.dequeue q ~tid);
          enq_batch = (fun q ~tid vs -> Ring.enqueue_batch q ~tid vs);
          deq_batch = (fun q ~tid ~n -> Ring.dequeue_batch q ~tid ~n);
          len = Ring.length;
        } );
    Q
      ( "ring mf=0 (all slow)",
        {
          make =
            (fun ~num_threads ->
              Ring.create_with ~capacity:4096 ~max_failures:0 ~num_threads
                ());
          enq = (fun q ~tid v -> Ring.enqueue q ~tid v);
          deq = (fun q ~tid -> Ring.dequeue q ~tid);
          enq_batch = (fun q ~tid vs -> Ring.enqueue_batch q ~tid vs);
          deq_batch = (fun q ~tid ~n -> Ring.dequeue_batch q ~tid ~n);
          len = Ring.length;
        } );
    (* Strict (single-shard) front-end: a linearizable FIFO, so the
       uniform ordering contract applies verbatim. *)
    Q
      ( "shard strict",
        {
          make = (fun ~num_threads -> Shard.create_strict ~num_threads ());
          enq = (fun q ~tid v -> Shard.enqueue q ~tid v);
          deq = (fun q ~tid -> Shard.dequeue q ~tid);
          enq_batch = (fun q ~tid vs -> Shard.enqueue_batch q ~tid vs);
          deq_batch = (fun q ~tid ~n -> Shard.dequeue_batch q ~tid ~n);
          len = Shard.length;
        } );
  ]

let test_batch_fifo (Q (name, b)) () =
  let q = b.make ~num_threads:1 in
  b.enq_batch q ~tid:0 [ 1; 2; 3 ];
  b.enq q ~tid:0 4;
  b.enq_batch q ~tid:0 [ 5; 6 ];
  Alcotest.(check int) (name ^ ": length after batches") 6 (b.len q);
  Alcotest.(check (list int))
    (name ^ ": batch dequeue in FIFO order")
    [ 1; 2; 3; 4 ]
    (b.deq_batch q ~tid:0 ~n:4);
  Alcotest.(check (option int)) (name ^ ": single after batch") (Some 5)
    (b.deq q ~tid:0);
  Alcotest.(check (list int))
    (name ^ ": tail of second batch")
    [ 6 ]
    (b.deq_batch q ~tid:0 ~n:1);
  Alcotest.(check (option int)) (name ^ ": drained") None (b.deq q ~tid:0)

let test_batch_edge_cases (Q (name, b)) () =
  let q = b.make ~num_threads:1 in
  b.enq_batch q ~tid:0 [];
  Alcotest.(check int) (name ^ ": empty batch is a no-op") 0 (b.len q);
  Alcotest.(check (list int))
    (name ^ ": zero want returns nothing")
    [] (b.deq_batch q ~tid:0 ~n:0);
  Alcotest.(check (list int))
    (name ^ ": over-ask on empty returns nothing")
    []
    (b.deq_batch q ~tid:0 ~n:5);
  b.enq_batch q ~tid:0 [ 7; 8 ];
  Alcotest.(check (list int))
    (name ^ ": over-ask returns short")
    [ 7; 8 ]
    (b.deq_batch q ~tid:0 ~n:10);
  b.enq_batch q ~tid:0 [ 9 ];
  Alcotest.(check (list int))
    (name ^ ": singleton batch")
    [ 9 ]
    (b.deq_batch q ~tid:0 ~n:1);
  Alcotest.check_raises (name ^ ": negative want rejected")
    (Invalid_argument
       (match name with
       | "kp-opt12" -> "Kp_queue.dequeue_batch: n"
       | "kp-fps mf=1" | "kp-fps mf=64" -> "Kp_queue_fps.dequeue_batch: n"
       | "ring mf=1" | "ring mf=0 (all slow)" -> "Ring_queue.dequeue_batch: n"
       | _ -> "Shard.dequeue_batch: n"))
    (fun () -> ignore (b.deq_batch q ~tid:0 ~n:(-1)))

let test_batch_interleaved_rounds (Q (name, b)) () =
  (* Many alternating batch/single rounds through one queue: the
     cross-batch FIFO seam never tears. *)
  let q = b.make ~num_threads:1 in
  let next = ref 1 and expect = ref 1 in
  for round = 1 to 50 do
    let k = 1 + (round mod 7) in
    let vs = List.init k (fun i -> !next + i) in
    next := !next + k;
    if round mod 3 = 0 then List.iter (fun v -> b.enq q ~tid:0 v) vs
    else b.enq_batch q ~tid:0 vs;
    let want = 1 + (round mod 5) in
    List.iter
      (fun v ->
        if v <> !expect then
          Alcotest.failf "%s: round %d got %d wanted %d" name round v !expect;
        incr expect)
      (b.deq_batch q ~tid:0 ~n:want)
  done;
  List.iter
    (fun v ->
      if v <> !expect then Alcotest.failf "%s: drain got %d" name v;
      incr expect)
    (b.deq_batch q ~tid:0 ~n:max_int);
  Alcotest.(check int) (name ^ ": all accounted") !next !expect;
  Alcotest.(check int) (name ^ ": empty at end") 0 (b.len q)

(* ------------------------------------------------------------------ *)
(* Ring-specific bounded behaviour                                     *)
(* ------------------------------------------------------------------ *)

let test_ring_partial_batch () =
  let q = Ring.create_with ~capacity:4 ~max_failures:1 ~num_threads:1 () in
  Ring.enqueue_batch q ~tid:0 [ 1; 2 ];
  (* Two free slots left: a four-element batch accepts exactly two. *)
  Alcotest.(check int) "accepted = free slots" 2
    (Ring.try_enqueue_batch q ~tid:0 [ 3; 4; 5; 6 ]);
  Alcotest.(check (list int))
    "accepted prefix in order" [ 1; 2; 3; 4 ]
    (Ring.dequeue_batch q ~tid:0 ~n:4);
  (* On full, [enqueue_batch] raises and keeps the accepted prefix. *)
  Ring.enqueue_batch q ~tid:0 [ 7; 8; 9 ];
  Alcotest.check_raises "enqueue_batch on full raises"
    Wfq_core.Ring_queue.Ring_full (fun () ->
      Ring.enqueue_batch q ~tid:0 [ 10; 11 ]);
  Alcotest.(check (list int))
    "prefix accepted before the raise survives"
    [ 7; 8; 9; 10 ]
    (Ring.dequeue_batch q ~tid:0 ~n:5);
  Alcotest.(check int) "try on empty batch accepts zero" 0
    (Ring.try_enqueue_batch q ~tid:0 [])

let test_ring_batch_wraparound () =
  (* Capacity 3, batches of 2: every batch crosses the wraparound
     somewhere within a few laps; order must survive the lap seams. *)
  let q = Ring.create_with ~capacity:3 ~max_failures:1 ~num_threads:1 () in
  let next = ref 0 and expect = ref 0 in
  for _ = 1 to 30 do
    Ring.enqueue_batch q ~tid:0 [ !next; !next + 1 ];
    next := !next + 2;
    List.iter
      (fun v ->
        Alcotest.(check int) "wraparound order" !expect v;
        incr expect)
      (Ring.dequeue_batch q ~tid:0 ~n:2)
  done;
  Alcotest.(check int) "drained" 0 (Ring.length q);
  Alcotest.(check bool) "quiescent invariants" true
    (Result.is_ok (Ring.check_quiescent_invariants q))

(* All-slow-path variant of the same laps: the batch descriptor drives
   every element through claim/install/publish. *)
let test_ring_batch_wraparound_slow () =
  let q = Ring.create_with ~capacity:2 ~max_failures:0 ~num_threads:1 () in
  let next = ref 0 and expect = ref 0 in
  for _ = 1 to 20 do
    Ring.enqueue_batch q ~tid:0 [ !next; !next + 1 ];
    next := !next + 2;
    List.iter
      (fun v ->
        Alcotest.(check int) "slow wraparound order" !expect v;
        incr expect)
      (Ring.dequeue_batch q ~tid:0 ~n:2)
  done;
  Alcotest.(check int) "drained" 0 (Ring.length q)

(* ------------------------------------------------------------------ *)
(* Shard batch routing and the cost contract                           *)
(* ------------------------------------------------------------------ *)

let test_shard_spread_routing () =
  let n = 4 in
  let q = Shard.create ~policy:Wfq_shard.Shard.Round_robin ~shards:n
      ~num_threads:1 ()
  in
  (* A batch of 2N spreads into exactly N contiguous backend batches of
     two elements each. *)
  Shard.enqueue_batch q ~tid:0 (List.init (2 * n) (fun i -> i));
  Alcotest.(check int) "spread used N backend batches" n
    (Shard.last_enqueue_batch_calls q ~tid:0);
  for s = 0 to n - 1 do
    Alcotest.(check int)
      (Printf.sprintf "shard %d got its chunk" s)
      2 (Shard.shard_length q s)
  done;
  (* A batch smaller than N keeps together: one backend batch. *)
  Shard.enqueue_batch q ~tid:0 [ 100; 101 ];
  Alcotest.(check int) "small batch keeps together" 1
    (Shard.last_enqueue_batch_calls q ~tid:0)

let test_shard_keep_together_routing () =
  let q = Shard.create ~policy:Wfq_shard.Shard.Tid_affine ~shards:4
      ~num_threads:4 ()
  in
  Shard.enqueue_batch q ~tid:2 (List.init 16 (fun i -> i));
  Alcotest.(check int) "tid-affine batch is one backend batch" 1
    (Shard.last_enqueue_batch_calls q ~tid:2);
  Alcotest.(check int) "whole batch in tid's shard" 16
    (Shard.shard_length q 2);
  (* The shard holds the batch contiguously in order. *)
  Alcotest.(check (list int))
    "intra-batch order in the shard"
    (List.init 16 (fun i -> i))
    (Shard.dequeue_batch q ~tid:2 ~n:16)

let test_shard_dequeue_cost_contract () =
  (* The satellite fix pinned: [dequeue_batch ~n] performs at most [N]
     backend batch dequeues — one per shard in a single lap — never the
     per-element [(n+1)*N] of the pre-batch front-end. *)
  let n = 4 and per_shard = 100 in
  let q = Shard.create ~policy:Wfq_shard.Shard.Tid_affine ~shards:n
      ~num_threads:n ()
  in
  for tid = 0 to n - 1 do
    Shard.enqueue_batch q ~tid
      (List.init per_shard (fun i -> (tid * 1000) + i))
  done;
  (* Drain everything in one batch: even at want = 400 over 4 shards,
     at most one backend batch per shard. *)
  let got = Shard.dequeue_batch q ~tid:0 ~n:(n * per_shard) in
  Alcotest.(check int) "all elements in one lap" (n * per_shard)
    (List.length got);
  let calls = Shard.last_dequeue_batch_calls q ~tid:0 in
  Alcotest.(check bool)
    (Printf.sprintf "at most N backend batches (got %d)" calls)
    true
    (calls >= 1 && calls <= n);
  (* Want served by the start shard alone: exactly one backend call. *)
  Shard.enqueue_batch q ~tid:1 (List.init 50 (fun i -> i));
  let got = Shard.dequeue_batch q ~tid:1 ~n:20 in
  Alcotest.(check int) "start shard served the want" 20 (List.length got);
  Alcotest.(check int) "one backend batch sufficed" 1
    (Shard.last_dequeue_batch_calls q ~tid:1);
  (* Empty front-end: the lap still costs at most N backend batches
     (steal visits pre-checked empty are skipped). *)
  ignore (Shard.dequeue_batch q ~tid:1 ~n:1000);
  ignore (Shard.dequeue_batch q ~tid:2 ~n:7 : int list);
  let calls = Shard.last_dequeue_batch_calls q ~tid:2 in
  Alcotest.(check bool)
    (Printf.sprintf "empty sweep bounded by N (got %d)" calls)
    true (calls <= n)

let test_shard_batch_steals () =
  (* All elements in shard 3; a dequeue batch starting elsewhere must
     steal the whole want in its single lap. *)
  let q = Shard.create ~policy:Wfq_shard.Shard.Tid_affine ~shards:4
      ~num_threads:4 ()
  in
  Shard.enqueue_batch q ~tid:3 [ 1; 2; 3; 4; 5 ];
  let got = Shard.dequeue_batch q ~tid:0 ~n:5 in
  Alcotest.(check (list int)) "stolen batch in shard order" [ 1; 2; 3; 4; 5 ]
    got;
  Alcotest.(check int) "served by shard 3" 3 (Shard.last_dequeue_shard q ~tid:0);
  Alcotest.(check bool) "within the lap bound" true
    (Shard.last_dequeue_batch_calls q ~tid:0 <= 4)

(* ------------------------------------------------------------------ *)
(* Scheduler fan-out                                                   *)
(* ------------------------------------------------------------------ *)

let test_sched_spawn_many_ordering () =
  let t = Fps_sched.create ~num_workers:1 () in
  let trace = ref [] in
  let log s = trace := s :: !trace in
  let pr =
    Fps_sched.submit t ~tid:0 (fun () ->
        log "P0";
        let prs =
          Fps_sched.spawn_many
            (List.init 3 (fun i ->
                 fun () ->
                   log (Printf.sprintf "C%d" i);
                   i * 10))
        in
        let vs = List.map Fps_sched.await prs in
        log "P1";
        vs)
  in
  ignore (Fps_sched.drain t ~tid:0 : int);
  (* One batch push preserves body order on the FIFO run-queue. *)
  Alcotest.(check (list string))
    "children run in body order" [ "P0"; "C0"; "C1"; "C2"; "P1" ]
    (List.rev !trace);
  Alcotest.(check bool) "promise order = body order" true
    (Fps_sched.result pr = Some (Ok [ 0; 10; 20 ]));
  Alcotest.(check int) "conservation" 0 (Fps_sched.pending_fibers t)

let test_sched_spawn_many_empty_and_single () =
  let t = Fps_sched.create ~num_workers:1 () in
  let pr =
    Fps_sched.submit t ~tid:0 (fun () ->
        let none = Fps_sched.spawn_many [] in
        let one = Fps_sched.spawn_many [ (fun () -> 41) ] in
        (List.length none, List.map Fps_sched.await one))
  in
  ignore (Fps_sched.drain t ~tid:0 : int);
  Alcotest.(check bool) "empty and singleton fan-out" true
    (Fps_sched.result pr = Some (Ok (0, [ 41 ])))

let test_sched_submit_batch () =
  let t = Fps_sched.create ~num_workers:1 () in
  let prs =
    Fps_sched.submit_batch t ~tid:0
      (List.init 10 (fun i -> fun () -> i * i))
  in
  Alcotest.(check int) "ten promises" 10 (List.length prs);
  ignore (Fps_sched.drain t ~tid:0 : int);
  List.iteri
    (fun i p ->
      Alcotest.(check bool)
        (Printf.sprintf "task %d result" i)
        true
        (Fps_sched.result p = Some (Ok (i * i))))
    prs;
  Alcotest.(check int) "all completed" 10 (Fps_sched.fibers_completed t)

let test_sched_spawn_many_parallel () =
  (* Four workers, a wide fan-out: every task's value arrives on the
     promise that position in the body list returned. *)
  let t = Fps_sched.create ~num_workers:4 () in
  let n = 200 in
  let total =
    Fps_sched.run t (fun () ->
        let prs = Fps_sched.spawn_many (List.init n (fun i -> fun () -> i)) in
        List.fold_left
          (fun acc (i, p) ->
            let v = Fps_sched.await p in
            if v <> i then Alcotest.failf "fan-out result %d got %d" i v;
            acc + v)
          0
          (List.mapi (fun i p -> (i, p)) prs))
  in
  Alcotest.(check int) "sum of fan-out" (n * (n - 1) / 2) total;
  Alcotest.(check int) "no fiber lost" 0 (Fps_sched.pending_fibers t)

(* ------------------------------------------------------------------ *)
(* Four-domain batch stress                                            *)
(* ------------------------------------------------------------------ *)

let encode ~producer ~seq = (producer * 1_000_000) + seq
let producer_of v = v / 1_000_000
let seq_of v = v mod 1_000_000

(* Mixed single/batch producers and batch consumers on real domains:
   conservation (exactly-once) plus per-producer order within each
   consumer's log. Applies to every backend whose global order is FIFO
   per producer — for the multi-shard front-end we use [Tid_affine], so
   each producer's values share a shard and stay mutually ordered. *)
let test_domains_batch_stress (Q (name, b)) () =
  let producers = 2 and consumers = 2 and per_producer = 3_000 in
  let num_threads = producers + consumers in
  let q = b.make ~num_threads in
  let total = producers * per_producer in
  let consumed = Atomic.make 0 in
  let logs = Array.make consumers [] in
  let producer p () =
    let seq = ref 1 in
    while !seq <= per_producer do
      let k = min (1 + (!seq mod 5)) (per_producer - !seq + 1) in
      let vs = List.init k (fun i -> encode ~producer:p ~seq:(!seq + i)) in
      if !seq mod 3 = 0 then List.iter (fun v -> b.enq q ~tid:p v) vs
      else b.enq_batch q ~tid:p vs;
      seq := !seq + k
    done
  in
  let consumer c () =
    let tid = producers + c in
    let got = ref [] in
    while Atomic.get consumed < total do
      match b.deq_batch q ~tid ~n:(1 + (Atomic.get consumed mod 7)) with
      | [] -> Domain.cpu_relax ()
      | xs ->
          List.iter (fun v -> got := v :: !got) xs;
          ignore (Atomic.fetch_and_add consumed (List.length xs) : int)
    done;
    logs.(c) <- List.rev !got
  in
  let domains =
    List.init producers (fun p -> Domain.spawn (producer p))
    @ List.init consumers (fun c -> Domain.spawn (consumer c))
  in
  List.iter Domain.join domains;
  let seen = Hashtbl.create total in
  Array.iter
    (List.iter (fun v ->
         if Hashtbl.mem seen v then
           Alcotest.failf "%s: value %d consumed twice" name v;
         Hashtbl.add seen v ()))
    logs;
  Alcotest.(check int)
    (name ^ ": every value consumed exactly once")
    total (Hashtbl.length seen);
  Alcotest.(check int) (name ^ ": empty at end") 0 (b.len q);
  Array.iter
    (fun log ->
      let last_seq = Array.make producers 0 in
      List.iter
        (fun v ->
          let p = producer_of v and s = seq_of v in
          if s <= last_seq.(p) then
            Alcotest.failf "%s: per-producer order violated (p%d: %d after %d)"
              name p s last_seq.(p);
          last_seq.(p) <- s)
        log)
    logs

let shard_affine =
  Q
    ( "shard tid-affine x4",
      {
        make =
          (fun ~num_threads ->
            Shard.create ~policy:Wfq_shard.Shard.Tid_affine ~shards:4
              ~num_threads ());
        enq = (fun q ~tid v -> Shard.enqueue q ~tid v);
        deq = (fun q ~tid -> Shard.dequeue q ~tid);
        enq_batch = (fun q ~tid vs -> Shard.enqueue_batch q ~tid vs);
        deq_batch = (fun q ~tid ~n -> Shard.dequeue_batch q ~tid ~n);
        len = Shard.length;
      } )

let contract_cases =
  List.concat_map
    (fun (Q (name, _) as q) ->
      [
        Alcotest.test_case (name ^ " FIFO across batches") `Quick
          (test_batch_fifo q);
        Alcotest.test_case (name ^ " edge cases") `Quick
          (test_batch_edge_cases q);
        Alcotest.test_case (name ^ " interleaved rounds") `Quick
          (test_batch_interleaved_rounds q);
      ])
    backends

let stress_cases =
  List.map
    (fun (Q (name, _) as q) ->
      Alcotest.test_case (name ^ " 2p/2c mixed batch") `Quick
        (test_domains_batch_stress q))
    (backends @ [ shard_affine ])

let () =
  Alcotest.run "batch"
    [
      ("contract", contract_cases);
      ( "ring bounded",
        [
          Alcotest.test_case "partial acceptance and Ring_full" `Quick
            test_ring_partial_batch;
          Alcotest.test_case "batches across wraparound" `Quick
            test_ring_batch_wraparound;
          Alcotest.test_case "all-slow batches across wraparound" `Quick
            test_ring_batch_wraparound_slow;
        ] );
      ( "shard routing",
        [
          Alcotest.test_case "round-robin spread" `Quick
            test_shard_spread_routing;
          Alcotest.test_case "tid-affine keep-together" `Quick
            test_shard_keep_together_routing;
          Alcotest.test_case "dequeue cost contract (<= N batches)" `Quick
            test_shard_dequeue_cost_contract;
          Alcotest.test_case "batch stealing within the lap" `Quick
            test_shard_batch_steals;
        ] );
      ( "sched fan-out",
        [
          Alcotest.test_case "spawn_many body order" `Quick
            test_sched_spawn_many_ordering;
          Alcotest.test_case "spawn_many empty and singleton" `Quick
            test_sched_spawn_many_empty_and_single;
          Alcotest.test_case "submit_batch" `Quick test_sched_submit_batch;
          Alcotest.test_case "spawn_many across 4 workers" `Quick
            test_sched_spawn_many_parallel;
        ] );
      ("domains", stress_cases);
    ]
